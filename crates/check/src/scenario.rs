//! The declarative fault-campaign DSL.
//!
//! A [`Scenario`] is data, not code: a topology recipe, a seed, and a
//! time-ordered schedule of [`FaultOp`]s. Because it is data it can be
//! generated randomly ([`random_scenario`]), replayed deterministically
//! (same seed, same event timeline, same simulation), *shrunk* by the
//! engine when an oracle fires (events dropped and advanced, see
//! `crate::shrink`), and printed back out as a self-contained Rust
//! snippet ([`Scenario::to_code`]) that reproduces a failure with nothing
//! but the workspace crates.

use autonet_sim::SimRng;
use autonet_topo::{gen, Topology};

/// A topology recipe: enough to rebuild the exact same [`Topology`]
/// (generators are seeded and deterministic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopoSpec {
    /// `gen::line(n, seed)`.
    Line { n: usize, seed: u64 },
    /// `gen::ring(n, seed)`.
    Ring { n: usize, seed: u64 },
    /// `gen::torus(w, h, seed)`.
    Torus { w: usize, h: usize, seed: u64 },
    /// `gen::random_connected(n, extra, seed)`.
    RandomConnected { n: usize, extra: usize, seed: u64 },
    /// `gen::random_connected(n, extra, seed)` plus `per_switch`
    /// dual-homed hosts on every switch — the hosted corpus the blackout
    /// oracle runs probes over.
    RandomConnectedHosts {
        n: usize,
        extra: usize,
        per_switch: usize,
        seed: u64,
    },
}

impl TopoSpec {
    /// Rebuilds the topology.
    pub fn build(&self) -> Topology {
        match *self {
            TopoSpec::Line { n, seed } => gen::line(n, seed),
            TopoSpec::Ring { n, seed } => gen::ring(n, seed),
            TopoSpec::Torus { w, h, seed } => gen::torus(w, h, seed),
            TopoSpec::RandomConnected { n, extra, seed } => gen::random_connected(n, extra, seed),
            TopoSpec::RandomConnectedHosts {
                n,
                extra,
                per_switch,
                seed,
            } => {
                let mut topo = gen::random_connected(n, extra, seed);
                gen::add_dual_homed_hosts(&mut topo, per_switch, seed ^ 0x4057);
                topo
            }
        }
    }

    /// The spec as a Rust expression (for reproducer snippets).
    pub fn to_code(&self) -> String {
        match *self {
            TopoSpec::Line { n, seed } => format!("TopoSpec::Line {{ n: {n}, seed: {seed} }}"),
            TopoSpec::Ring { n, seed } => format!("TopoSpec::Ring {{ n: {n}, seed: {seed} }}"),
            TopoSpec::Torus { w, h, seed } => {
                format!("TopoSpec::Torus {{ w: {w}, h: {h}, seed: {seed} }}")
            }
            TopoSpec::RandomConnected { n, extra, seed } => {
                format!("TopoSpec::RandomConnected {{ n: {n}, extra: {extra}, seed: {seed} }}")
            }
            TopoSpec::RandomConnectedHosts {
                n,
                extra,
                per_switch,
                seed,
            } => format!(
                "TopoSpec::RandomConnectedHosts {{ n: {n}, extra: {extra}, per_switch: {per_switch}, seed: {seed} }}"
            ),
        }
    }
}

/// One schedulable operation of a fault campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Cut trunk link `l` (both directions at once — an unplugged cable).
    LinkDown(usize),
    /// Repair trunk link `l`.
    LinkUp(usize),
    /// Crash switch `s` (its control program and crossbar freeze).
    SwitchDown(usize),
    /// Power switch `s` back on: a fresh Autopilot boots from scratch.
    SwitchUp(usize),
    /// Power off host `h` with cables attached (reflecting stubs, §5.3).
    HostPowerOff(usize),
    /// Power host `h` back on.
    HostPowerOn(usize),
    /// A flapping cable: `2 * cycles` alternating down/up events on link
    /// `l`, one every `half_period_ms` — the skeptic's nemesis (§6.5.5).
    LinkFlaps {
        link: usize,
        half_period_ms: u64,
        cycles: usize,
    },
    /// Cut every trunk link with exactly one end in `side`: a clean
    /// bisection into two running partitions.
    Partition { side: Vec<usize> },
    /// Repair every trunk link with exactly one end in `side`.
    Heal { side: Vec<usize> },
    /// A timed waypoint: the network must reach quiescence within
    /// `settle_ms` of this point, and the quiescence oracles (single-epoch
    /// agreement per component) are evaluated there.
    Waypoint { settle_ms: u64 },
}

impl FaultOp {
    /// The op as a Rust expression (for reproducer snippets).
    pub fn to_code(&self) -> String {
        match self {
            FaultOp::LinkDown(l) => format!("FaultOp::LinkDown({l})"),
            FaultOp::LinkUp(l) => format!("FaultOp::LinkUp({l})"),
            FaultOp::SwitchDown(s) => format!("FaultOp::SwitchDown({s})"),
            FaultOp::SwitchUp(s) => format!("FaultOp::SwitchUp({s})"),
            FaultOp::HostPowerOff(h) => format!("FaultOp::HostPowerOff({h})"),
            FaultOp::HostPowerOn(h) => format!("FaultOp::HostPowerOn({h})"),
            FaultOp::LinkFlaps {
                link,
                half_period_ms,
                cycles,
            } => format!(
                "FaultOp::LinkFlaps {{ link: {link}, half_period_ms: {half_period_ms}, cycles: {cycles} }}"
            ),
            FaultOp::Partition { side } => format!("FaultOp::Partition {{ side: vec!{side:?} }}"),
            FaultOp::Heal { side } => format!("FaultOp::Heal {{ side: vec!{side:?} }}"),
            FaultOp::Waypoint { settle_ms } => {
                format!("FaultOp::Waypoint {{ settle_ms: {settle_ms} }}")
            }
        }
    }
}

/// A timestamped [`FaultOp`]. Times are relative to the end of the
/// initial bring-up (the engine first lets the network converge once, so
/// `at_ms: 0` means "immediately after first quiescence").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from first quiescence, in milliseconds of virtual time.
    pub at_ms: u64,
    /// What happens then.
    pub op: FaultOp,
}

/// A complete declarative fault campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Display name (used in panic messages and reproducers).
    pub name: String,
    /// Topology recipe.
    pub topo: TopoSpec,
    /// Seed for the simulation backend (boot jitter, loss, ...).
    pub seed: u64,
    /// The fault schedule, sorted by the engine before running.
    pub events: Vec<FaultEvent>,
    /// Final settle budget after the last event, in milliseconds: the
    /// reconfiguration-termination liveness bound.
    pub settle_ms: u64,
}

impl Scenario {
    /// The scenario as a Rust expression (for reproducer snippets).
    pub fn to_code(&self) -> String {
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "FaultEvent {{ at_ms: {}, op: {} }}",
                    e.at_ms,
                    e.op.to_code()
                )
            })
            .collect();
        format!(
            "Scenario {{\n        name: {:?}.into(),\n        topo: {},\n        seed: {},\n        events: vec![\n            {},\n        ],\n        settle_ms: {},\n    }}",
            self.name,
            self.topo.to_code(),
            self.seed,
            events.join(",\n            "),
            self.settle_ms,
        )
    }
}

/// Generates a random but well-formed campaign: a connected topology and
/// `n_events` fault events that respect basic sanity (no repairing an up
/// link, at most half the switches down at once, flap windows that do not
/// overlap later events). Deterministic in `seed`.
pub fn random_scenario(seed: u64, n_events: usize) -> Scenario {
    let n_switches = 6 + (seed % 7) as usize;
    let extra = (seed % 5) as usize;
    let topo_seed = seed.wrapping_mul(31);
    let topo = TopoSpec::RandomConnected {
        n: n_switches,
        extra,
        seed: topo_seed,
    };
    let built = topo.build();
    let n_links = built.num_links();
    let mut rng = SimRng::new(seed ^ 0xF417);
    let mut link_up = vec![true; n_links];
    let mut switch_up = vec![true; n_switches];
    let mut t_ms: u64 = 0;
    let mut events = Vec::new();
    for _ in 0..n_events {
        t_ms += 30 + rng.below(400);
        let down_switches = switch_up.iter().filter(|u| !**u).count();
        let op = match rng.below(10) {
            0..=3 => {
                let l = rng.index(n_links);
                if link_up[l] {
                    link_up[l] = false;
                    FaultOp::LinkDown(l)
                } else {
                    link_up[l] = true;
                    FaultOp::LinkUp(l)
                }
            }
            4 | 5 => {
                if down_switches + 1 < n_switches / 2 {
                    let s = rng.index(n_switches);
                    if switch_up[s] {
                        switch_up[s] = false;
                        FaultOp::SwitchDown(s)
                    } else {
                        switch_up[s] = true;
                        FaultOp::SwitchUp(s)
                    }
                } else if let Some(s) = switch_up.iter().position(|u| !*u) {
                    switch_up[s] = true;
                    FaultOp::SwitchUp(s)
                } else {
                    FaultOp::LinkDown(rng.index(n_links))
                }
            }
            6 => {
                // A flapping cable; advance the cursor past the flap
                // window so later events (and waypoints) see it settled.
                let link = rng.index(n_links);
                let half_period_ms = 20 + rng.below(60);
                let cycles = 1 + rng.index(3);
                let op = FaultOp::LinkFlaps {
                    link,
                    half_period_ms,
                    cycles,
                };
                t_ms += 2 * half_period_ms * cycles as u64;
                link_up[link] = true;
                op
            }
            7 => {
                if built.num_hosts() > 0 {
                    FaultOp::HostPowerOff(rng.index(built.num_hosts()))
                } else {
                    FaultOp::LinkUp(rng.index(n_links))
                }
            }
            _ => FaultOp::Waypoint { settle_ms: 60_000 },
        };
        // Scrub ops that would no-op into something harmless but legal:
        // LinkUp on an up link and HostPowerOff are idempotent in the
        // backends, so anything above is safe to schedule as-is.
        events.push(FaultEvent { at_ms: t_ms, op });
    }
    Scenario {
        name: format!("random-{seed}-{n_events}"),
        topo,
        seed,
        events,
        settle_ms: 300_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_code_roundtrips_textually() {
        let a = random_scenario(42, 8);
        let b = random_scenario(42, 8);
        assert_eq!(a, b);
        let c = random_scenario(43, 8);
        assert_ne!(a, c);
        // The generated code mentions every event.
        let code = a.to_code();
        assert!(code.contains("TopoSpec::RandomConnected"));
        assert_eq!(code.matches("FaultEvent").count(), a.events.len());
    }

    #[test]
    fn topo_specs_rebuild_identically() {
        let spec = TopoSpec::RandomConnected {
            n: 8,
            extra: 2,
            seed: 7,
        };
        let t1 = spec.build();
        let t2 = spec.build();
        assert_eq!(t1.num_switches(), t2.num_switches());
        assert_eq!(t1.num_links(), t2.num_links());
    }
}

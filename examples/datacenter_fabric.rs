//! The SRC service network under load: 30 switches in an approximate
//! 4 × 8 torus, 120 dual-homed hosts (companion paper §5.1), uniform
//! random traffic, and a mid-run switch crash that the network absorbs.
//!
//! Run with: `cargo run --release --example datacenter_fabric`

use autonet::net::{workload, NetParams, Network};
use autonet::sim::{SimDuration, SimTime};
use autonet::topo::{gen, SwitchId};

fn main() {
    let mut topo = gen::src_network(1991);
    gen::add_dual_homed_hosts(&mut topo, 4, 5);
    println!(
        "SRC service network: {} switches, {} trunk links, {} hosts",
        topo.num_switches(),
        topo.num_links(),
        topo.num_hosts()
    );

    let sends = workload::uniform_random(
        &topo,
        SimTime::from_secs(8),
        SimDuration::from_secs(4),
        SimDuration::from_millis(2),
        1024,
        99,
    );
    println!("workload: {} random 1 KiB frames over 4 s", sends.len());

    let mut net = Network::new(topo, NetParams::tuned(), 3);
    let converged = net
        .run_until_stable(SimTime::from_secs(30))
        .expect("network configures itself");
    println!("configured at t = {converged}");
    net.check_against_reference().expect("consistent");

    // Let hosts obtain addresses, then start the workload.
    net.run_for(SimTime::from_secs(8).saturating_since(net.now()));
    for s in &sends {
        net.schedule_host_send(s.at, s.from, s.to, s.len, s.tag);
    }

    // Crash a switch two seconds into the run.
    let victim = SwitchId(13);
    net.schedule_switch_down(SimTime::from_secs(10), victim);
    println!("switch {victim:?} will crash at t = 10 s");

    net.run_for(SimDuration::from_secs(5));
    let _ = net.run_until_stable(net.now() + SimDuration::from_secs(30));

    let stats = net.stats();
    println!("\nresults:");
    println!("  data frames sent       {}", stats.data_sent);
    println!("  data frames delivered  {}", stats.data_delivered);
    println!(
        "  discarded (incl. during reconfiguration) {}",
        stats.data_discarded
    );
    println!("  control packets        {}", stats.control_sent);
    let delivery_rate = stats.data_delivered as f64 / stats.data_sent.max(1) as f64;
    println!("  delivery rate          {:.1}%", delivery_rate * 100.0);

    // Per-host learning statistics (paper §6.8.1: few broadcasts).
    let mut bcast = 0u64;
    let mut unicast = 0u64;
    let mut arps = 0u64;
    for h in net.topology().host_ids() {
        let s = net.host(h).localnet_stats();
        bcast += s.broadcast_fallback_sent;
        unicast += s.unicast_sent;
        arps += s.arp_requests_sent;
    }
    println!("\nshort-address learning:");
    println!("  unicast data           {unicast}");
    println!(
        "  broadcast fallbacks    {bcast} ({:.2}% of data)",
        bcast as f64 * 100.0 / (bcast + unicast).max(1) as f64
    );
    println!("  ARP requests           {arps}");

    let survivors_open = net
        .topology()
        .switch_ids()
        .filter(|&s| s != victim)
        .all(|s| net.autopilot(s).is_open());
    println!(
        "\nafter the crash: all {} surviving switches open: {survivors_open}",
        net.topology().num_switches() - 1
    );
    let g = net.autopilot(SwitchId(0)).global().unwrap();
    println!(
        "  surviving configuration: {} switches, root {}",
        g.switches.len(),
        g.root
    );
}

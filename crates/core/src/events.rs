//! The typed control-plane event taxonomy.
//!
//! The companion paper (§6.7) describes the merged per-switch event log as
//! the project's primary debugging tool. This module gives the
//! reproduction the machine-readable version: a *closed* enum covering
//! exactly the observable happenings the paper reasons about — port-state
//! transitions up and down the tower, skeptic hysteresis decisions, and
//! the epoch lifecycle from failure detection to reopening. Every
//! [`Autopilot`](crate::Autopilot) records these into its circular
//! [`TraceLog`](autonet_sim::TraceLog); backends forward them into a
//! network-wide spine (`autonet-trace`) that checkers, timelines and
//! golden-trace tests all consume.
//!
//! Keep the enum closed: downstream consumers (oracles, the JSONL
//! serializer, timeline reconstruction) match exhaustively so that adding
//! a variant is a compile-visible change everywhere it matters.

use std::fmt;

use autonet_sim::SimDuration;
use autonet_switch::ForwardingTable;
use autonet_wire::{PortIndex, Uid};

use crate::epoch::Epoch;
use crate::port_state::PortState;

/// Why a reconfiguration was triggered (§4: any change in the set of
/// usable links or switches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconfigCause {
    /// The switch powered on.
    Boot,
    /// A port in service was condemned by the status sampler.
    PortDied,
    /// A new switch neighbor was verified on some port.
    NewNeighbor,
    /// A verified switch neighbor stopped answering probes.
    NeighborLost,
    /// A probe went unanswered past the timeout while classifying.
    ProbeTimeout,
    /// A neighbor announced a newer epoch; this switch joined it.
    EpochMessage,
}

impl ReconfigCause {
    /// Stable lowercase tag (used by the canonical JSONL export).
    pub fn tag(self) -> &'static str {
        match self {
            ReconfigCause::Boot => "boot",
            ReconfigCause::PortDied => "port-died",
            ReconfigCause::NewNeighbor => "new-neighbor",
            ReconfigCause::NeighborLost => "neighbor-lost",
            ReconfigCause::ProbeTimeout => "probe-timeout",
            ReconfigCause::EpochMessage => "epoch-message",
        }
    }
}

impl fmt::Display for ReconfigCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Which of the two skeptics (§6.5.5) made a decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkepticKind {
    /// The status skeptic gating `s.dead` → `s.checking`.
    Status,
    /// The connectivity skeptic gating `s.switch.who` → `s.switch.good`.
    Connectivity,
}

impl SkepticKind {
    /// Stable lowercase tag (used by the canonical JSONL export).
    pub fn tag(self) -> &'static str {
        match self {
            SkepticKind::Status => "status",
            SkepticKind::Connectivity => "connectivity",
        }
    }
}

/// What a skeptic decided about a port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkepticVerdict {
    /// The hold expired with a clean record: the port may advance.
    Release,
    /// The port completed classification and entered service.
    Accept,
    /// The port misbehaved: the skeptic raised its hold.
    Hold,
}

impl SkepticVerdict {
    /// Stable lowercase tag (used by the canonical JSONL export).
    pub fn tag(self) -> &'static str {
        match self {
            SkepticVerdict::Release => "release",
            SkepticVerdict::Accept => "accept",
            SkepticVerdict::Hold => "hold",
        }
    }
}

/// Why a port changed state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionCause {
    /// The status skeptic's hold expired on an error-free port.
    SkepticRelease,
    /// Enough clean samples matched a host or switch fingerprint.
    Classified,
    /// A probe reply proved the far end is the claimed switch.
    NeighborVerified,
    /// A probe reply came back on the sending switch: the cable loops.
    LoopDetected,
    /// Errors, `idhy`, or a blockage condemned the port.
    Relapse,
}

impl TransitionCause {
    /// Stable lowercase tag (used by the canonical JSONL export).
    pub fn tag(self) -> &'static str {
        match self {
            TransitionCause::SkepticRelease => "skeptic-release",
            TransitionCause::Classified => "classified",
            TransitionCause::NeighborVerified => "neighbor-verified",
            TransitionCause::LoopDetected => "loop-detected",
            TransitionCause::Relapse => "relapse",
        }
    }
}

impl fmt::Display for TransitionCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One observable control-plane happening on one switch.
///
/// The epoch-lifecycle variants spell out the paper's reconfiguration
/// phases in order: [`ReconfigTriggered`](Event::ReconfigTriggered)
/// (failure detected) → [`NetworkClosed`](Event::NetworkClosed) →
/// [`TreeStable`](Event::TreeStable) (the root's termination detection
/// fired) → [`AddressesAssigned`](Event::AddressesAssigned) →
/// [`TableInstalled`](Event::TableInstalled) →
/// [`NetworkOpened`](Event::NetworkOpened).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The control program started on this switch.
    Boot {
        /// The switch's hardwired unique id.
        uid: Uid,
    },
    /// A port moved on the state tower (§6.5).
    PortTransition {
        /// The port that changed.
        port: PortIndex,
        /// The state it left.
        from: PortState,
        /// The state it entered.
        to: PortState,
        /// Why it moved.
        cause: TransitionCause,
    },
    /// A skeptic ruled on a port (§6.5.5).
    SkepticDecision {
        /// The port ruled on.
        port: PortIndex,
        /// Which skeptic ruled.
        skeptic: SkepticKind,
        /// The ruling.
        verdict: SkepticVerdict,
        /// The hold the skeptic now requires for this port.
        hold: SimDuration,
    },
    /// A reconfiguration began: the failure (or arrival) was detected.
    ReconfigTriggered {
        /// The epoch the switch is entering.
        epoch: Epoch,
        /// What it detected.
        cause: ReconfigCause,
    },
    /// The switch stopped host traffic (reconfiguration step 1).
    NetworkClosed {
        /// The epoch being entered.
        epoch: Epoch,
    },
    /// The root's stability protocol detected the complete tree (§5.3).
    TreeStable {
        /// The epoch whose tree settled.
        epoch: Epoch,
    },
    /// The root assigned short-address switch numbers (§6.5.2).
    AddressesAssigned {
        /// The epoch being completed.
        epoch: Epoch,
        /// How many switches were numbered.
        switches: u32,
    },
    /// A complete forwarding table was loaded into the switch hardware.
    TableInstalled {
        /// The epoch the table belongs to.
        epoch: Epoch,
        /// The table itself (checkers verify it is loop-free *as
        /// installed*, not just at quiescence).
        table: ForwardingTable,
    },
    /// The switch reopened for host traffic (reconfiguration done here).
    NetworkOpened {
        /// The completed epoch.
        epoch: Epoch,
    },
    /// The completed topology admits no legal routes from this switch;
    /// the table stays cleared.
    UnroutableTopology {
        /// The epoch that completed unroutably.
        epoch: Epoch,
    },
}

impl Event {
    /// Stable kind tag, one per variant (used by the canonical JSONL
    /// export and by subsequence comparisons across backends).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Boot { .. } => "boot",
            Event::PortTransition { .. } => "port-transition",
            Event::SkepticDecision { .. } => "skeptic-decision",
            Event::ReconfigTriggered { .. } => "reconfig-triggered",
            Event::NetworkClosed { .. } => "network-closed",
            Event::TreeStable { .. } => "tree-stable",
            Event::AddressesAssigned { .. } => "addresses-assigned",
            Event::TableInstalled { .. } => "table-installed",
            Event::NetworkOpened { .. } => "network-opened",
            Event::UnroutableTopology { .. } => "unroutable-topology",
        }
    }

    /// Whether this is a control-plane lifecycle event (close / install /
    /// open) — the subset invariant checkers consume and the subset that
    /// must agree across substrate backends.
    pub fn is_control_plane(&self) -> bool {
        matches!(
            self,
            Event::NetworkClosed { .. }
                | Event::TableInstalled { .. }
                | Event::NetworkOpened { .. }
        )
    }

    /// The epoch this event belongs to, if it is epoch-scoped.
    pub fn epoch(&self) -> Option<Epoch> {
        match self {
            Event::ReconfigTriggered { epoch, .. }
            | Event::NetworkClosed { epoch }
            | Event::TreeStable { epoch }
            | Event::AddressesAssigned { epoch, .. }
            | Event::TableInstalled { epoch, .. }
            | Event::NetworkOpened { epoch }
            | Event::UnroutableTopology { epoch } => Some(*epoch),
            Event::Boot { .. } | Event::PortTransition { .. } | Event::SkepticDecision { .. } => {
                None
            }
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Boot { uid } => write!(f, "boot (uid {uid})"),
            Event::PortTransition {
                port,
                from,
                to,
                cause,
            } => {
                write!(f, "port {port}: {from} -> {to} ({cause})")
            }
            Event::SkepticDecision {
                port,
                skeptic,
                verdict,
                hold,
            } => write!(
                f,
                "port {port}: {} skeptic {} (hold {hold})",
                skeptic.tag(),
                verdict.tag()
            ),
            Event::ReconfigTriggered { epoch, cause } => {
                write!(f, "reconfiguration {epoch}: {cause}")
            }
            Event::NetworkClosed { epoch } => write!(f, "closed for {epoch}"),
            Event::TreeStable { epoch } => write!(f, "tree stable at {epoch}"),
            Event::AddressesAssigned { epoch, switches } => {
                write!(f, "addresses assigned for {epoch} ({switches} switches)")
            }
            Event::TableInstalled { epoch, table } => {
                write!(f, "table installed for {epoch} ({} entries)", table.len())
            }
            Event::NetworkOpened { epoch } => write!(f, "opened at {epoch}"),
            Event::UnroutableTopology { epoch } => {
                write!(f, "unroutable topology at {epoch}; keeping cleared table")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = Event::PortTransition {
            port: 3,
            from: PortState::Dead,
            to: PortState::Checking,
            cause: TransitionCause::SkepticRelease,
        };
        assert_eq!(
            e.to_string(),
            "port 3: s.dead -> s.checking (skeptic-release)"
        );
        let e = Event::ReconfigTriggered {
            epoch: Epoch(5),
            cause: ReconfigCause::PortDied,
        };
        assert_eq!(e.to_string(), "reconfiguration e5: port-died");
        assert_eq!(e.kind(), "reconfig-triggered");
        assert_eq!(e.epoch(), Some(Epoch(5)));
    }

    #[test]
    fn control_plane_subset() {
        assert!(Event::NetworkClosed { epoch: Epoch(1) }.is_control_plane());
        assert!(Event::NetworkOpened { epoch: Epoch(1) }.is_control_plane());
        assert!(Event::TableInstalled {
            epoch: Epoch(1),
            table: ForwardingTable::new(),
        }
        .is_control_plane());
        assert!(!Event::Boot { uid: Uid::new(1) }.is_control_plane());
        assert!(!Event::TreeStable { epoch: Epoch(1) }.is_control_plane());
    }
}

// Pinned by: UPDATE_GOLDENS=1 cargo test --release --test worst_case_goldens
// Search seed 24: blackout 1.346s / 6 pairs / hold 2.831s / unroutable 0ns
// Random corpus median blackout: 347.034ms; 22 evaluations, 0 oracle violations.
(
    Scenario {
        name: "worst-24".into(),
        topo: TopoSpec::Hosted { base: Box::new(TopoSpec::Ring { n: 8, seed: 2 }), per_switch: 1, seed: 7 },
        seed: 24,
        events: vec![
            FaultEvent { at_ms: 526, op: FaultOp::LinkDown(4) },
            FaultEvent { at_ms: 526, op: FaultOp::LinkFlaps { link: 2, half_period_ms: 73, cycles: 2 } },
            FaultEvent { at_ms: 1071, op: FaultOp::LinkDown(5) },
        ],
        settle_ms: 30000,
    },
    1345506887u64,
)

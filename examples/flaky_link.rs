//! The skeptics at work: a flapping trunk cable is quarantined for
//! progressively longer periods, so an intermittent component cannot
//! thrash the whole network with reconfigurations (companion paper §4.4,
//! §6.5.5).
//!
//! Run with: `cargo run --release --example flaky_link`

use autonet::net::{NetParams, Network};
use autonet::sim::{SimDuration, SimTime};
use autonet::topo::{gen, LinkId, SwitchId};

fn main() {
    // A ring so the flapping link is never a cut edge.
    let topo = gen::ring(6, 17);
    let flaky = LinkId(0);
    let spec = topo.link(flaky).clone();
    println!(
        "6-switch ring; link {flaky:?} between {:?} and {:?} will flap",
        spec.a.switch, spec.b.switch
    );

    let mut net = Network::new(topo, NetParams::tuned(), 2);
    net.run_until_stable(SimTime::from_secs(30))
        .expect("converges");
    let baseline_reconfigs = net.total_reconfigs_triggered();
    println!(
        "converged at {}; {} reconfigurations during bring-up",
        net.now(),
        baseline_reconfigs
    );

    // Flap: 50 ms down / 50 ms up, 40 cycles (4 seconds of abuse).
    let start = net.now() + SimDuration::from_millis(100);
    net.schedule_link_flaps(start, flaky, SimDuration::from_millis(50), 40);
    net.run_for(SimDuration::from_secs(6));
    let after_flaps = net.total_reconfigs_triggered();
    println!(
        "\nduring 40 down/up cycles: {} reconfigurations triggered",
        after_flaps - baseline_reconfigs
    );
    println!(
        "(without hysteresis each cycle would cost two network-wide \
         reconfigurations: 80 total)"
    );

    // The network is still sane and, with the link now stably up, heals.
    let healed = net.run_until_stable(net.now() + SimDuration::from_secs(120));
    match healed {
        Some(t) => {
            println!("\nlink reintegrated and network consistent at {t}");
        }
        None => {
            // The skeptic can legitimately still be holding the port out.
            println!("\nskeptic still quarantining the link (long hold earned)");
        }
    }
    net.run_for(SimDuration::from_secs(120));
    let final_ok = net.control_plane_consistent();
    println!("eventually consistent with link restored: {final_ok}");

    // Show the per-port state at both ends.
    for end in [spec.a, spec.b] {
        let ap = net.autopilot(end.switch);
        println!(
            "  {:?} port {}: {}",
            end.switch,
            end.port,
            ap.port_state(end.port)
        );
    }
    let total = net.total_reconfigs_triggered();
    println!("total reconfigurations over the whole run: {total}");
    assert!(
        net.autopilot(SwitchId(0)).is_open(),
        "network must stay in service"
    );
}

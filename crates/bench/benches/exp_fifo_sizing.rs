//! E6 — The FIFO sizing law (§6.2).
//!
//! Paper: with flow-control slots every `S` slots, free fraction `f`, and
//! cable length `L` km (`W = 64.1·L` slots one-way), a receive FIFO never
//! overflows if `N ≥ (S − 1 + 2W)/f = (S − 1 + 128.2·L)/f`. For S = 256,
//! f = 0.5, L = 2 km that gives N = 1024. We block a receiver, stream at
//! full rate, and measure the true high-water mark against the law.

use autonet_bench::print_table;
use autonet_switch::datapath::{DatapathConfig, DatapathSim};
use autonet_switch::{ForwardingEntry, PortSet};
use autonet_wire::{LinkTiming, ShortAddress};

/// Worst case for the A→S FIFO: host A streams to output X which is held
/// busy by a giant packet from host B, so A's bytes pile up in the port-1
/// FIFO until flow control stops A.
fn high_water(latency_slots: usize, capacity: usize, stop_at: usize) -> (usize, u64) {
    // Configure the stop threshold at `stop_at` entries while leaving
    // `capacity` headroom above it so we can observe the overshoot.
    let f = 1.0 - stop_at as f64 / capacity as f64;
    let config = DatapathConfig {
        fifo_capacity: capacity,
        fifo_free_fraction: f,
        ..DatapathConfig::default()
    };
    let mut sim = DatapathSim::new(config);
    let s = sim.add_switch();
    let a = sim.add_host();
    let b = sim.add_host();
    let x = sim.add_host();
    sim.connect_host(a, s, 1, latency_slots);
    // B's link is short so B's giant packet wins the output port before
    // A's first bytes arrive.
    sim.connect_host(b, s, 2, 1);
    sim.connect_host(x, s, 3, 7);
    let to_x = ShortAddress::from_raw(0x0103);
    for p in [1u8, 2] {
        sim.table_mut(s)
            .set(p, to_x, ForwardingEntry::alternatives(PortSet::single(3)));
    }
    // B's giant packet grabs the output first; A's packet then backs up.
    sim.send(b, to_x, 30_000, false);
    sim.send(a, to_x, 20_000, false);
    sim.run_until_drained(5_000_000, 50_000);
    (sim.fifo_max_occupancy(s, 1), sim.stats().fifo_overflows)
}

fn main() {
    println!("E6: receive-FIFO sizing law  N >= (S - 1 + 128.2 L) / f");
    println!("(receiver blocked, sender streaming; S = 256, stop threshold 512)");
    let mut rows = Vec::new();
    let stop_at = 512;
    for length_km in [0.1f64, 0.5, 1.0, 2.0, 3.0] {
        let timing = LinkTiming::with_length_km(length_km);
        let w = timing.latency_slots() as usize;
        // The law, restated for a fixed stop threshold: occupancy never
        // exceeds threshold + (S - 1) + 2W.
        let bound = stop_at + 255 + 2 * w;
        let (hw, overflows) = high_water(w.max(1), 8192, stop_at);
        rows.push(vec![
            format!("{length_km} km"),
            w.to_string(),
            bound.to_string(),
            hw.to_string(),
            overflows.to_string(),
        ]);
        assert!(
            hw <= bound + 4,
            "law violated at {length_km} km: {hw} > {bound}"
        );
        assert!(
            hw + 600 > bound,
            "measurement not tight at {length_km} km: {hw} vs {bound}"
        );
    }
    print_table(
        "E6: worst-case FIFO occupancy vs the sizing bound",
        &[
            "cable",
            "W (slots)",
            "bound: 512+255+2W",
            "measured high-water",
            "overflows",
        ],
        &rows,
    );

    // The paper's headline instance: N = 1024, f = 0.5, L = 2 km.
    let timing = LinkTiming::fiber_2km();
    let (hw, overflows) = high_water(timing.latency_slots() as usize, 1024, 512);
    println!(
        "\npaper instance (N = 1024, f = 0.5, 2 km fiber): high-water {hw}/1024, {overflows} overflows"
    );
    assert_eq!(
        overflows, 0,
        "the paper's 1024-entry FIFO must suffice at 2 km"
    );
    println!(
        "\nShape check: the high-water mark tracks the bound within a few\n\
         entries across cable lengths, and the paper's 1024-entry FIFO is\n\
         exactly sufficient for a 2 km link."
    );
}

//! Topology generators for the experiment families.
//!
//! Every generator takes a `seed` that scrambles the UID assignment, so the
//! spanning-tree root (the smallest UID) lands at a pseudorandom switch —
//! exactly the situation a real installation faces, where ROM UIDs have no
//! relation to physical position. Seed `0` is special-cased to sequential
//! UIDs (switch `i` gets UID `i + 1`), which is convenient for tests that
//! need to know the root in advance.

use autonet_sim::SimRng;
use autonet_wire::{LinkTiming, Uid};

use crate::graph::{SwitchId, Topology};

/// Generates `n` distinct UIDs according to the seed convention above.
fn make_uids(n: usize, seed: u64) -> Vec<Uid> {
    if seed == 0 {
        return (0..n).map(|i| Uid::new(i as u64 + 1)).collect();
    }
    let mut rng = SimRng::new(seed);
    let mut used = std::collections::BTreeSet::new();
    let mut uids = Vec::with_capacity(n);
    while uids.len() < n {
        let raw = rng.range(1, Uid::MASK);
        if used.insert(raw) {
            uids.push(Uid::new(raw));
        }
    }
    uids
}

/// Builds a topology from a switch count and an edge list.
fn from_edges(n: usize, edges: &[(usize, usize)], seed: u64, timing: LinkTiming) -> Topology {
    let mut t = Topology::new();
    let uids = make_uids(n, seed);
    let ids: Vec<SwitchId> = uids
        .into_iter()
        .map(|u| t.add_switch(u).expect("generated UIDs are distinct"))
        .collect();
    for &(a, b) in edges {
        t.connect(ids[a], ids[b], timing)
            .expect("generators stay within port limits");
    }
    t
}

/// A line of `n` switches: `0 - 1 - ... - n-1`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn line(n: usize, seed: u64) -> Topology {
    assert!(n > 0, "need at least one switch");
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    from_edges(n, &edges, seed, LinkTiming::coax_100m())
}

/// A ring of `n` switches.
///
/// # Panics
///
/// Panics if `n < 3` (a 2-ring would be a parallel trunk, not a ring).
pub fn ring(n: usize, seed: u64) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 switches");
    let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    from_edges(n, &edges, seed, LinkTiming::coax_100m())
}

/// A star: switch 0 in the center, `leaves` switches around it.
///
/// # Panics
///
/// Panics if `leaves` is zero or exceeds the 12 external ports of the hub.
pub fn star(leaves: usize, seed: u64) -> Topology {
    assert!((1..=12).contains(&leaves), "hub has 12 external ports");
    let edges: Vec<_> = (1..=leaves).map(|i| (0, i)).collect();
    from_edges(leaves + 1, &edges, seed, LinkTiming::coax_100m())
}

/// A complete `arity`-ary tree of the given `depth` (depth 0 = just the
/// root). Switch 0 is the tree root; children are numbered breadth-first.
///
/// # Panics
///
/// Panics if `arity` is zero or would exceed switch port limits
/// (root needs `arity` ports, internal nodes `arity + 1`).
pub fn tree(arity: usize, depth: usize, seed: u64) -> Topology {
    assert!(
        (1..=11).contains(&arity),
        "arity must fit in 12 ports with a parent link"
    );
    let mut edges = Vec::new();
    let mut level_start = 0usize;
    let mut level_len = 1usize;
    let mut next = 1usize;
    for _ in 0..depth {
        for parent in level_start..level_start + level_len {
            for _ in 0..arity {
                edges.push((parent, next));
                next += 1;
            }
        }
        level_start += level_len;
        level_len *= arity;
    }
    from_edges(next, &edges, seed, LinkTiming::coax_100m())
}

/// A `w × h` torus; switch `(x, y)` has index `y * w + x`. Dimensions of
/// size 1 omit the wraparound (degenerating to a grid in that dimension);
/// dimensions of size 2 produce parallel trunk links, which Autonet treats
/// as a trunk group.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn torus(w: usize, h: usize, seed: u64) -> Topology {
    assert!(w > 0 && h > 0, "degenerate torus");
    let idx = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if w > 1 {
                if x + 1 < w {
                    edges.push((idx(x, y), idx(x + 1, y)));
                } else if w > 2 {
                    edges.push((idx(x, y), idx(0, y)));
                } else {
                    // w == 2: the wrap would duplicate (0,y)-(1,y); emit it
                    // once as a trunk pair only from x == 1.
                    edges.push((idx(1, y), idx(0, y)));
                }
            }
            if h > 1 {
                if y + 1 < h {
                    edges.push((idx(x, y), idx(x, y + 1)));
                } else if h > 2 {
                    edges.push((idx(x, y), idx(x, 0)));
                } else {
                    edges.push((idx(x, 1), idx(x, 0)));
                }
            }
        }
    }
    from_edges(w * h, &edges, seed, LinkTiming::coax_100m())
}

/// A `w × h` mesh (torus without wraparound links).
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(w: usize, h: usize, seed: u64) -> Topology {
    assert!(w > 0 && h > 0, "degenerate grid");
    let idx = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    from_edges(w * h, &edges, seed, LinkTiming::coax_100m())
}

/// A `dim`-dimensional hypercube (`2^dim` switches).
///
/// # Panics
///
/// Panics if `dim` exceeds 12 ports or is zero.
pub fn hypercube(dim: usize, seed: u64) -> Topology {
    assert!(
        (1..=12).contains(&dim),
        "hypercube degree must fit in 12 ports"
    );
    let n = 1usize << dim;
    let mut edges = Vec::new();
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if v < u {
                edges.push((v, u));
            }
        }
    }
    from_edges(n, &edges, seed, LinkTiming::coax_100m())
}

/// An extended generalized fat tree (XGFT) with equal up- and
/// down-arity per level: `arities = [m1, ..., mh]` builds an
/// `h + 1`-level folded Clos where a height-`l` subtree is `m_l` copies
/// of a height-`l-1` subtree capped by `m_l × (tops of the copy)` new
/// switches, each new switch linking to the same top position in every
/// copy. With `w = m` at every level the level populations are all
/// equal (`m1 · m2 · ... · mh` switches each), so the total is
/// `(h + 1) · ∏ mᵢ`:
///
/// - `[8, 2, 4]` → 4 × 64 = 256 switches,
/// - `[8, 3, 6]` → 4 × 144 = 576 switches,
/// - `[8, 4, 8]` → 4 × 256 = 1024 switches,
///
/// all within the 12-external-port budget (a middle-level switch uses
/// `m_l + m_{l+1}` trunk ports). Leaves come first in index order,
/// level by level; the top level is last.
///
/// # Panics
///
/// Panics if `arities` is empty, any arity is zero, or any switch
/// would need more than 12 trunk ports.
pub fn fat_tree(arities: &[usize], seed: u64) -> Topology {
    assert!(!arities.is_empty(), "need at least one level");
    assert!(arities.iter().all(|&m| m > 0), "arities must be positive");
    assert!(arities[0] <= 12, "leaf up-degree exceeds 12 ports");
    assert!(
        arities.windows(2).all(|w| w[0] + w[1] <= 12),
        "middle-level degree exceeds 12 ports"
    );
    assert!(*arities.last().expect("non-empty") <= 12);

    /// Builds one height-`l` subtree; returns its top-level switch ids.
    fn build(arities: &[usize], next: &mut usize, edges: &mut Vec<(usize, usize)>) -> Vec<usize> {
        let Some((&m, rest)) = arities.split_last() else {
            let id = *next;
            *next += 1;
            return vec![id];
        };
        let copies: Vec<Vec<usize>> = (0..m).map(|_| build(rest, next, edges)).collect();
        let per_copy = copies[0].len();
        let mut tops = Vec::with_capacity(m * per_copy);
        // w = m new tops per top position: position t of every copy
        // gets one uplink to each of the m switches covering t.
        for _k in 0..m {
            for t in 0..per_copy {
                let id = *next;
                *next += 1;
                for copy in &copies {
                    edges.push((copy[t], id));
                }
                tops.push(id);
            }
        }
        tops
    }

    let mut edges = Vec::new();
    let mut next = 0usize;
    build(arities, &mut next, &mut edges);
    from_edges(next, &edges, seed, LinkTiming::coax_100m())
}

/// A random regular expander: the union of `cycles` independent random
/// Hamiltonian cycles on `n` switches (degree `2 × cycles`). Random
/// cycle unions are expanders with high probability, giving the
/// low-diameter / high-bisection counterpart to the fat tree at the
/// same switch count. Coinciding edges from different cycles become
/// parallel trunk links (a trunk group), which Autonet handles.
///
/// # Panics
///
/// Panics if `n < 3` or `cycles` is not in `1..=6` (the 12-port limit).
pub fn expander(n: usize, cycles: usize, seed: u64) -> Topology {
    assert!(n >= 3, "an expander cycle needs at least 3 switches");
    assert!(
        (1..=6).contains(&cycles),
        "degree 2 × cycles must fit in 12 ports"
    );
    let mut rng = SimRng::new(seed ^ 0xE8A9_D3C1);
    let mut edges = Vec::new();
    for _ in 0..cycles {
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        for i in 0..n {
            edges.push((order[i], order[(i + 1) % n]));
        }
    }
    from_edges(n, &edges, seed, LinkTiming::coax_100m())
}

/// A random connected topology: a uniform random spanning tree plus
/// `extra_links` random non-loop links, respecting the 12-port limit.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn random_connected(n: usize, extra_links: usize, seed: u64) -> Topology {
    assert!(n > 0, "need at least one switch");
    let mut rng = SimRng::new(seed ^ 0xC0FF_EE00);
    // Random spanning tree by random attachment order.
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut degree = vec![0usize; n];
    for i in 1..n {
        // Attach to a random earlier switch with a free port (keep one port
        // in reserve for later extra links).
        let candidates: Vec<usize> = order[..i]
            .iter()
            .copied()
            .filter(|&p| degree[p] < 11)
            .collect();
        let parent = if candidates.is_empty() {
            order[rng.index(i)]
        } else {
            *rng.choose(&candidates)
        };
        edges.push((parent, order[i]));
        degree[parent] += 1;
        degree[order[i]] += 1;
    }
    let mut attempts = 0;
    let mut added = 0;
    while added < extra_links && attempts < extra_links * 20 {
        attempts += 1;
        let a = rng.index(n);
        let b = rng.index(n);
        if a == b || degree[a] >= 12 || degree[b] >= 12 {
            continue;
        }
        edges.push((a.min(b), a.max(b)));
        degree[a] += 1;
        degree[b] += 1;
        added += 1;
    }
    from_edges(n, &edges, seed, LinkTiming::coax_100m())
}

/// The SRC service network: an approximate 4 × 8 torus of 30 switches
/// (a 4 × 8 torus with two opposite switches removed), as described in
/// companion paper §5.1 and §6.6.5. Maximum switch-to-switch distance is 6.
pub fn src_network(seed: u64) -> Topology {
    let w = 8;
    let h = 4;
    // Remove two far-apart switches to get from 32 down to 30.
    let removed = [0usize, 18]; // (0,0) and (2,2)
    let keep: Vec<usize> = (0..w * h).filter(|i| !removed.contains(i)).collect();
    let renumber: std::collections::HashMap<usize, usize> = keep
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect();
    let idx = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let a = idx(x, y);
            for (nx, ny) in [((x + 1) % w, y), (x, (y + 1) % h)] {
                let b = idx(nx, ny);
                if let (Some(&ra), Some(&rb)) = (renumber.get(&a), renumber.get(&b)) {
                    edges.push((ra, rb));
                }
            }
        }
    }
    from_edges(keep.len(), &edges, seed, LinkTiming::coax_100m())
}

/// Attaches `per_switch` dual-homed hosts to every switch: each host's
/// primary port goes to its home switch and its alternate to the next
/// switch (by id, wrapping), mirroring the SRC wiring pattern where every
/// switch serves 4 primary and 4 alternate host links.
///
/// Host UIDs are derived from the seed and are distinct from switch UIDs.
///
/// # Panics
///
/// Panics if a switch runs out of ports.
pub fn add_dual_homed_hosts(topo: &mut Topology, per_switch: usize, seed: u64) {
    let n = topo.num_switches();
    if n == 0 {
        return;
    }
    let mut rng = SimRng::new(seed ^ 0x5757_5757);
    for s in 0..n {
        for _ in 0..per_switch {
            let alt = if n > 1 {
                Some(SwitchId((s + 1) % n))
            } else {
                None
            };
            // Host UIDs are drawn from the top of the space so they never
            // collide with generated switch UIDs in practice; retry on the
            // (astronomically unlikely) collision.
            loop {
                let raw = rng.range(Uid::MASK / 2, Uid::MASK);
                if topo.attach_host(Uid::new(raw), SwitchId(s), alt).is_ok() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{diameter, is_connected};

    #[test]
    fn line_shape() {
        let t = line(5, 0);
        assert_eq!(t.num_switches(), 5);
        assert_eq!(t.num_links(), 4);
        assert!(is_connected(&t.view_all()));
        assert_eq!(diameter(&t.view_all()), Some(4));
    }

    #[test]
    fn ring_shape() {
        let t = ring(6, 0);
        assert_eq!(t.num_links(), 6);
        assert_eq!(diameter(&t.view_all()), Some(3));
    }

    #[test]
    fn star_shape() {
        let t = star(5, 0);
        assert_eq!(t.num_switches(), 6);
        assert_eq!(t.num_links(), 5);
        assert_eq!(diameter(&t.view_all()), Some(2));
    }

    #[test]
    fn binary_tree_counts() {
        let t = tree(2, 3, 0);
        assert_eq!(t.num_switches(), 15);
        assert_eq!(t.num_links(), 14);
        assert_eq!(diameter(&t.view_all()), Some(6));
    }

    #[test]
    fn torus_4x8_matches_paper_diameter() {
        let t = torus(8, 4, 0);
        assert_eq!(t.num_switches(), 32);
        assert_eq!(t.num_links(), 64);
        assert_eq!(diameter(&t.view_all()), Some(6));
    }

    #[test]
    fn small_torus_dimensions() {
        // 1×n degenerates to a line; 2×n uses trunk pairs.
        let t1 = torus(1, 4, 0);
        assert!(is_connected(&t1.view_all()));
        assert_eq!(t1.num_links(), 4); // ring in the h dimension
        let t2 = torus(2, 3, 0);
        assert!(is_connected(&t2.view_all()));
        let t3 = torus(3, 3, 0);
        assert_eq!(t3.num_links(), 18);
    }

    #[test]
    fn grid_has_no_wraparound() {
        let t = grid(3, 3, 0);
        assert_eq!(t.num_links(), 12);
        assert_eq!(diameter(&t.view_all()), Some(4));
    }

    #[test]
    fn hypercube_shape() {
        let t = hypercube(4, 0);
        assert_eq!(t.num_switches(), 16);
        assert_eq!(t.num_links(), 32);
        assert_eq!(diameter(&t.view_all()), Some(4));
    }

    #[test]
    fn fat_tree_level_populations_and_ports() {
        // The three E22 rows: equal level populations, total (h+1)·∏m.
        for (arities, want) in [
            (vec![8usize, 2, 4], 256usize),
            (vec![8, 3, 6], 576),
            (vec![8, 4, 8], 1024),
        ] {
            let t = fat_tree(&arities, 0);
            assert_eq!(t.num_switches(), want, "{arities:?}");
            assert!(is_connected(&t.view_all()), "{arities:?} disconnected");
            for s in t.switch_ids() {
                let trunks = t.links_at(s).count();
                assert!(trunks <= 12, "{s:?} has {trunks} trunk ports");
            }
        }
        // Link count for [8, 2, 4]: 8 × 64 + 4 × 32 + 1 × 256 = 896.
        let t = fat_tree(&[8, 2, 4], 0);
        assert_eq!(t.num_links(), 896);
    }

    #[test]
    fn small_fat_tree_shape() {
        // [2, 2]: 4 leaves, 4 middle, 4 top; every leaf reaches every
        // other leaf within 4 hops (up to the top, back down).
        let t = fat_tree(&[2, 2], 0);
        assert_eq!(t.num_switches(), 12);
        // 2 subtrees × 4 links inside, then 4 top switches × 2 downlinks.
        assert_eq!(t.num_links(), 16);
        assert!(is_connected(&t.view_all()));
        assert!(diameter(&t.view_all()).unwrap() <= 4);
    }

    #[test]
    fn expander_is_regular_and_low_diameter() {
        let t = expander(64, 3, 7);
        assert_eq!(t.num_switches(), 64);
        assert_eq!(t.num_links(), 3 * 64);
        assert!(is_connected(&t.view_all()));
        for s in t.switch_ids() {
            assert_eq!(t.links_at(s).count(), 6, "{s:?} not 6-regular");
        }
        // 6-regular random graphs on 64 nodes have diameter ~3-4; allow
        // slack but catch gross non-expansion.
        assert!(diameter(&t.view_all()).unwrap() <= 6);
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 1..20 {
            let t = random_connected(24, 10, seed);
            assert_eq!(t.num_switches(), 24);
            assert!(t.num_links() >= 23);
            assert!(is_connected(&t.view_all()), "seed {seed} disconnected");
        }
    }

    #[test]
    fn src_network_matches_paper() {
        let t = src_network(0);
        assert_eq!(t.num_switches(), 30);
        assert!(is_connected(&t.view_all()));
        let d = diameter(&t.view_all()).unwrap();
        assert!(
            (5..=7).contains(&d),
            "SRC network diameter {d}, paper says max distance 6"
        );
        // Every switch uses at most 4 ports for switch-to-switch links,
        // leaving 8 for hosts, as in the paper.
        for s in t.switch_ids() {
            assert!(t.links_at(s).count() <= 4, "{s:?} has too many trunk ports");
        }
    }

    #[test]
    fn src_network_with_hosts_fills_ports() {
        let mut t = src_network(0);
        add_dual_homed_hosts(&mut t, 4, 7);
        assert_eq!(t.num_hosts(), 120);
        for s in t.switch_ids() {
            let host_ports = t.hosts_at(s).count();
            assert!(host_ports == 8, "{s:?} has {host_ports} host ports");
        }
    }

    #[test]
    fn seeded_uids_are_scrambled_but_deterministic() {
        let a = ring(8, 42);
        let b = ring(8, 42);
        let c = ring(8, 43);
        let uids = |t: &Topology| -> Vec<_> { t.switch_ids().map(|s| t.switch(s).uid).collect() };
        assert_eq!(uids(&a), uids(&b));
        assert_ne!(uids(&a), uids(&c));
        // Seed 0 gives sequential UIDs.
        let d = ring(8, 0);
        assert_eq!(uids(&d)[0], Uid::new(1));
        assert_eq!(uids(&d)[7], Uid::new(8));
    }

    #[test]
    fn single_homed_hosts_on_singleton() {
        let mut t = line(1, 0);
        add_dual_homed_hosts(&mut t, 2, 1);
        assert_eq!(t.num_hosts(), 2);
        assert!(t.host(crate::graph::HostId(0)).alternate.is_none());
    }
}

//! The dual-ported host controller and its driver.
//!
//! Each host connects to two different switches but uses one port at a
//! time (companion paper §3.9, §6.8.3). The driver confirms the host's
//! short address with the local switch every few seconds; when the switch
//! stops answering it probes more vigorously, and after three seconds of
//! silence it fails over to the alternate port, forgets its short address,
//! and re-learns it from the new switch. If neither link answers, the
//! driver alternates between them every ten seconds. Failover happens
//! below LocalNet, so higher-level protocols usually survive it.

use std::collections::VecDeque;

use autonet_sim::{SimDuration, SimTime};
use autonet_wire::{Packet, PacketType, ShortAddress, Uid};

use crate::frame::EthFrame;
use crate::localnet::{LocalNet, LocalNetStats};

/// Driver timing parameters (defaults from §6.8.3).
#[derive(Clone, Copy, Debug)]
pub struct HostParams {
    /// Normal liveness-check period ("every few seconds").
    pub liveness_interval: SimDuration,
    /// Silence after a check before probing vigorously.
    pub reply_timeout: SimDuration,
    /// Vigorous probe period.
    pub vigorous_interval: SimDuration,
    /// Silence that triggers failover to the alternate port.
    pub failover_threshold: SimDuration,
    /// How long to try a silent link before switching again.
    pub alternate_retry: SimDuration,
    /// Frames buffered while no short address is known.
    pub tx_buffer_frames: usize,
}

impl Default for HostParams {
    fn default() -> Self {
        HostParams {
            liveness_interval: SimDuration::from_secs(2),
            reply_timeout: SimDuration::from_millis(500),
            vigorous_interval: SimDuration::from_millis(100),
            failover_threshold: SimDuration::from_secs(3),
            alternate_retry: SimDuration::from_secs(10),
            tx_buffer_frames: 64,
        }
    }
}

/// Driver counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostStats {
    /// Port switches performed.
    pub failovers: u64,
    /// Frames discarded because the transmit buffer was full.
    pub tx_discards: u64,
    /// Liveness checks transmitted.
    pub checks_sent: u64,
}

/// What the controller asks its environment to do.
#[derive(Clone, Debug)]
pub enum HostAction {
    /// Transmit a packet on controller port 0 (primary) or 1 (alternate).
    Transmit {
        /// Which controller port.
        port: usize,
        /// The packet.
        packet: Packet,
    },
    /// Deliver a received frame to the client.
    Deliver(EthFrame),
    /// The driver switched the active port.
    PortSwitched {
        /// The now-active controller port.
        active: usize,
    },
    /// The host learned (or re-learned) its short address.
    AddressLearned(ShortAddress),
}

/// The host controller + driver + LocalNet stack.
pub struct HostController {
    uid: Uid,
    params: HostParams,
    localnet: LocalNet,
    dual_ported: bool,
    active: usize,
    last_contact: Option<SimTime>,
    last_check: Option<SimTime>,
    switched_at: SimTime,
    pending_tx: VecDeque<EthFrame>,
    stats: HostStats,
}

impl HostController {
    /// Creates a controller; `dual_ported` hosts can fail over.
    pub fn new(uid: Uid, params: HostParams, dual_ported: bool) -> Self {
        HostController {
            uid,
            params,
            localnet: LocalNet::new(uid),
            dual_ported,
            active: 0,
            last_contact: None,
            last_check: None,
            switched_at: SimTime::ZERO,
            pending_tx: VecDeque::new(),
            stats: HostStats::default(),
        }
    }

    /// The host's UID.
    pub fn uid(&self) -> Uid {
        self.uid
    }

    /// The active controller port (0 or 1).
    pub fn active_port(&self) -> usize {
        self.active
    }

    /// The current short address, if known.
    pub fn short_address(&self) -> Option<ShortAddress> {
        self.localnet.my_short()
    }

    /// Driver counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// LocalNet counters.
    pub fn localnet_stats(&self) -> LocalNetStats {
        self.localnet.stats()
    }

    /// Shared access to the LocalNet cache (for assertions in tests).
    pub fn localnet(&self) -> &LocalNet {
        &self.localnet
    }

    /// Boot: contact the local switch for our short address.
    pub fn boot(&mut self, now: SimTime) -> Vec<HostAction> {
        self.send_check(now)
    }

    /// Client transmission request.
    pub fn send(&mut self, now: SimTime, frame: EthFrame) -> Vec<HostAction> {
        if self.localnet.my_short().is_none() {
            if self.pending_tx.len() >= self.params.tx_buffer_frames {
                self.stats.tx_discards += 1;
            } else {
                self.pending_tx.push_back(frame);
            }
            return Vec::new();
        }
        self.localnet
            .transmit(now, &frame)
            .into_iter()
            .map(|packet| HostAction::Transmit {
                port: self.active,
                packet,
            })
            .collect()
    }

    /// A packet arrived on controller port `port`.
    pub fn on_packet(&mut self, now: SimTime, port: usize, packet: &Packet) -> Vec<HostAction> {
        if port != self.active {
            // The alternate connection is unused; packets there are noise.
            return Vec::new();
        }
        let mut actions = Vec::new();
        match packet.ptype {
            PacketType::HostSwitch => {
                if let Ok(msg) = autonet_core_shim::decode_short_addr_reply(&packet.payload) {
                    if msg.0 == self.uid {
                        self.last_contact = Some(now);
                        let addr = msg.1;
                        let changed = self.localnet.my_short() != Some(addr);
                        for p in self.localnet.set_own_address(addr) {
                            actions.push(HostAction::Transmit {
                                port: self.active,
                                packet: p,
                            });
                        }
                        if changed {
                            actions.push(HostAction::AddressLearned(addr));
                        }
                        // Flush frames queued while addressless.
                        while let Some(frame) = self.pending_tx.pop_front() {
                            for p in self.localnet.transmit(now, &frame) {
                                actions.push(HostAction::Transmit {
                                    port: self.active,
                                    packet: p,
                                });
                            }
                        }
                    }
                }
            }
            PacketType::Data => {
                let (delivered, responses) = self.localnet.receive(now, packet);
                for p in responses {
                    actions.push(HostAction::Transmit {
                        port: self.active,
                        packet: p,
                    });
                }
                if let Some(frame) = delivered {
                    actions.push(HostAction::Deliver(frame));
                }
            }
            _ => {}
        }
        actions
    }

    /// Periodic driver tick.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<HostAction> {
        let mut actions = Vec::new();
        self.localnet.on_tick(now);
        let silence = self.last_contact.map_or_else(
            || now.saturating_since(self.switched_at),
            |t| now.saturating_since(t),
        );
        // Failover logic.
        if self.dual_ported {
            let since_switch = now.saturating_since(self.switched_at);
            let threshold = if self.last_contact.is_some() {
                self.params.failover_threshold
            } else {
                // Never heard anything on this link since switching: give
                // it the ten-second trial before alternating again.
                self.params.alternate_retry
            };
            if silence >= threshold && since_switch >= threshold.min(self.params.alternate_retry) {
                self.active = 1 - self.active;
                self.switched_at = now;
                self.last_contact = None;
                self.last_check = None;
                self.stats.failovers += 1;
                actions.push(HostAction::PortSwitched {
                    active: self.active,
                });
                actions.extend(self.send_check(now));
                return actions;
            }
        }
        // Liveness checking cadence: vigorous when the switch has gone
        // quiet, relaxed otherwise.
        let interval = if silence > self.params.reply_timeout {
            self.params.vigorous_interval
        } else {
            self.params.liveness_interval
        };
        let due = self
            .last_check
            .is_none_or(|t| now.saturating_since(t) >= interval);
        if due {
            actions.extend(self.send_check(now));
        }
        actions
    }

    fn send_check(&mut self, now: SimTime) -> Vec<HostAction> {
        self.last_check = Some(now);
        self.stats.checks_sent += 1;
        let packet = Packet::new(
            ShortAddress::TO_LOCAL_SWITCH,
            self.localnet
                .my_short()
                .unwrap_or(ShortAddress::BROADCAST_HOSTS),
            PacketType::HostSwitch,
            autonet_core_shim::encode_short_addr_request(self.uid),
        );
        vec![HostAction::Transmit {
            port: self.active,
            packet,
        }]
    }
}

/// Minimal codec for the host↔switch service messages, byte-compatible
/// with `autonet-core`'s `ControlMsg::{ShortAddrRequest, ShortAddrReply}`
/// (tags 9 and 10). Duplicated here so the host crate does not depend on
/// the control-plane crate.
mod autonet_core_shim {
    use autonet_wire::{ShortAddress, Uid};

    /// Encodes a short-address request for `host_uid`.
    pub fn encode_short_addr_request(host_uid: Uid) -> Vec<u8> {
        let mut v = Vec::with_capacity(7);
        v.push(9);
        v.extend_from_slice(&host_uid.to_bytes());
        v
    }

    /// Decodes a short-address reply into `(host_uid, addr)`.
    pub fn decode_short_addr_reply(payload: &[u8]) -> Result<(Uid, ShortAddress), ()> {
        if payload.len() != 9 || payload[0] != 10 {
            return Err(());
        }
        let uid = Uid::from_bytes(payload[1..7].try_into().expect("6 bytes"));
        let addr = ShortAddress::from_bytes([payload[7], payload[8]]);
        Ok((uid, addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::IP_ETHERTYPE;

    fn reply_packet(host_uid: Uid, addr: ShortAddress) -> Packet {
        let mut payload = Vec::with_capacity(9);
        payload.push(10);
        payload.extend_from_slice(&host_uid.to_bytes());
        payload.extend_from_slice(&addr.to_bytes());
        Packet::new(
            addr,
            ShortAddress::TO_LOCAL_SWITCH,
            PacketType::HostSwitch,
            payload,
        )
    }

    fn controller() -> HostController {
        HostController::new(Uid::new(100), HostParams::default(), true)
    }

    #[test]
    fn boot_asks_for_short_address() {
        let mut c = controller();
        let actions = c.boot(SimTime::ZERO);
        assert_eq!(actions.len(), 1);
        let HostAction::Transmit { port, packet } = &actions[0] else {
            panic!("expected transmit");
        };
        assert_eq!(*port, 0);
        assert_eq!(packet.dst, ShortAddress::TO_LOCAL_SWITCH);
        assert_eq!(packet.ptype, PacketType::HostSwitch);
    }

    #[test]
    fn learns_address_and_flushes_queue() {
        let mut c = controller();
        c.boot(SimTime::ZERO);
        // Queue a frame before the address arrives.
        let frame = EthFrame::new(Uid::new(200), Uid::new(100), IP_ETHERTYPE, &b"x"[..]);
        assert!(c.send(SimTime::from_millis(1), frame).is_empty());
        // The switch answers.
        let addr = ShortAddress::assigned(3, 5);
        let actions = c.on_packet(
            SimTime::from_millis(2),
            0,
            &reply_packet(Uid::new(100), addr),
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, HostAction::AddressLearned(a2) if *a2 == addr)));
        // The queued frame went out (as a broadcast fallback).
        assert!(actions.iter().any(
            |a| matches!(a, HostAction::Transmit { packet, .. } if packet.ptype == PacketType::Data)
        ));
        assert_eq!(c.short_address(), Some(addr));
    }

    #[test]
    fn failover_after_three_seconds_of_silence() {
        let mut c = controller();
        c.boot(SimTime::ZERO);
        // Establish contact at t=0.1s.
        c.on_packet(
            SimTime::from_millis(100),
            0,
            &reply_packet(Uid::new(100), ShortAddress::assigned(1, 1)),
        );
        // Tick forward without further contact; ticks every 100 ms.
        let mut now = SimTime::from_millis(100);
        let mut switched = None;
        for _ in 0..200 {
            now += SimDuration::from_millis(100);
            let actions = c.on_tick(now);
            if actions
                .iter()
                .any(|a| matches!(a, HostAction::PortSwitched { .. }))
            {
                switched = Some(now);
                break;
            }
        }
        let switched = switched.expect("must fail over");
        let silence = switched.saturating_since(SimTime::from_millis(100));
        assert!(
            silence >= SimDuration::from_secs(3) && silence < SimDuration::from_secs(4),
            "failover after {silence}"
        );
        assert_eq!(c.active_port(), 1);
        assert_eq!(
            c.short_address(),
            Some(ShortAddress::assigned(1, 1)),
            "address kept until relearned"
        );
    }

    #[test]
    fn alternates_every_ten_seconds_when_both_dead() {
        let mut c = controller();
        c.boot(SimTime::ZERO);
        c.on_packet(
            SimTime::from_millis(100),
            0,
            &reply_packet(Uid::new(100), ShortAddress::assigned(1, 1)),
        );
        let mut now = SimTime::from_millis(100);
        let mut switch_times = Vec::new();
        for _ in 0..600 {
            now += SimDuration::from_millis(100);
            let actions = c.on_tick(now);
            if actions
                .iter()
                .any(|a| matches!(a, HostAction::PortSwitched { .. }))
            {
                switch_times.push(now);
            }
        }
        assert!(switch_times.len() >= 3, "{switch_times:?}");
        // After the first failover the host alternates roughly every 10 s.
        let gap = switch_times[2].saturating_since(switch_times[1]);
        assert!(
            gap >= SimDuration::from_secs(9) && gap <= SimDuration::from_secs(11),
            "gap {gap}"
        );
    }

    #[test]
    fn vigorous_probing_when_silent() {
        let mut c = controller();
        c.boot(SimTime::ZERO);
        c.on_packet(
            SimTime::from_millis(100),
            0,
            &reply_packet(Uid::new(100), ShortAddress::assigned(1, 1)),
        );
        // In the first 2 s of silence past the reply timeout, checks speed up.
        let mut now = SimTime::from_millis(100);
        let mut checks = 0;
        for _ in 0..25 {
            now += SimDuration::from_millis(100);
            let actions = c.on_tick(now);
            checks += actions
                .iter()
                .filter(|a| matches!(a, HostAction::Transmit { packet, .. } if packet.ptype == PacketType::HostSwitch))
                .count();
        }
        assert!(
            checks >= 10,
            "expected vigorous probing, saw {checks} checks"
        );
    }

    #[test]
    fn packets_on_inactive_port_ignored() {
        let mut c = controller();
        c.boot(SimTime::ZERO);
        let actions = c.on_packet(
            SimTime::from_millis(1),
            1,
            &reply_packet(Uid::new(100), ShortAddress::assigned(9, 9)),
        );
        assert!(actions.is_empty());
        assert_eq!(c.short_address(), None);
    }

    #[test]
    fn tx_buffer_bounds_and_discards() {
        let mut c = HostController::new(
            Uid::new(100),
            HostParams {
                tx_buffer_frames: 2,
                ..HostParams::default()
            },
            true,
        );
        c.boot(SimTime::ZERO);
        let frame = EthFrame::new(Uid::new(200), Uid::new(100), IP_ETHERTYPE, &b"x"[..]);
        for _ in 0..5 {
            c.send(SimTime::from_millis(1), frame.clone());
        }
        assert_eq!(c.stats().tx_discards, 3);
    }

    #[test]
    fn single_ported_host_never_fails_over() {
        let mut c = HostController::new(Uid::new(100), HostParams::default(), false);
        c.boot(SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..300 {
            now += SimDuration::from_millis(100);
            let actions = c.on_tick(now);
            assert!(!actions
                .iter()
                .any(|a| matches!(a, HostAction::PortSwitched { .. })));
        }
        assert_eq!(c.stats().failovers, 0);
    }
}

//! Property-based tests on the core invariants.

use std::collections::BTreeMap;

use proptest::prelude::*;

use autonet::autopilot::Epoch;
use autonet::autopilot::{
    assign_switch_numbers, global_from_view_simple, AutopilotParams, ConnectivityEvent,
    ConnectivityMonitor, ControlMsg, PortState, RouteComputer, RouteKind, Skeptic, SrpPayload,
    SwitchInfo, TreePosition,
};
use autonet::autopilot::{Event, ReconfigCause};
use autonet::sim::{SimDuration, SimTime};
use autonet::topo::gen;
use autonet::trace::{merge_sorted, Histogram, Timeline, TraceRecord};
use autonet::wire::{crc32, Packet, PacketType, ShortAddress, Uid};

/// An arbitrary trace event for timeline-reconstruction properties
/// (`tag` selects the kind, `epoch` scopes the epoch-carrying ones).
fn arbitrary_event(tag: u8, epoch: u64) -> Event {
    let epoch = Epoch(epoch);
    match tag % 7 {
        0 => Event::ReconfigTriggered {
            epoch,
            cause: ReconfigCause::EpochMessage,
        },
        1 => Event::NetworkClosed { epoch },
        2 => Event::TreeStable { epoch },
        3 => Event::AddressesAssigned { epoch, switches: 4 },
        4 => Event::TableInstalled {
            epoch,
            table: autonet::switch::ForwardingTable::new(),
        },
        5 => Event::NetworkOpened { epoch },
        _ => Event::UnroutableTopology { epoch },
    }
}

/// One step of an adversarial schedule against a [`Skeptic`].
#[derive(Clone, Copy, Debug)]
enum SkepticOp {
    /// A relapse: the port misbehaved.
    Bad,
    /// The port entered a good state.
    GoodStart,
    /// An idle observation (only time passes).
    Observe,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Up*/down* routing is deadlock-free on arbitrary connected graphs.
    #[test]
    fn updown_deadlock_free_on_random_graphs(
        n in 2usize..24,
        extra in 0usize..12,
        seed in 1u64..10_000,
    ) {
        let topo = gen::random_connected(n, extra, seed);
        let global = global_from_view_simple(&topo.view_all()).expect("non-empty");
        let rc = RouteComputer::new(&global);
        prop_assert!(!rc.has_dependency_cycle(RouteKind::UpDown));
    }

    /// Every switch can reach every other via a legal route, and legal
    /// routes are never shorter than unrestricted ones.
    #[test]
    fn updown_reaches_everything(
        n in 2usize..20,
        extra in 0usize..10,
        seed in 1u64..10_000,
    ) {
        let topo = gen::random_connected(n, extra, seed);
        let global = global_from_view_simple(&topo.view_all()).expect("non-empty");
        let rc = RouteComputer::new(&global);
        for a in global.switches.iter() {
            for b in global.switches.iter() {
                let legal = rc.legal_dist(a.uid, b.uid);
                prop_assert!(legal.is_some(), "{:?} cannot reach {:?}", a.uid, b.uid);
                let short = rc.unrestricted_dist(a.uid, b.uid).unwrap();
                prop_assert!(legal.unwrap() >= short);
            }
        }
    }

    /// All usable links carry minimal routes (§6.6.4: "all links used").
    #[test]
    fn all_links_carry_traffic(
        n in 3usize..16,
        extra in 0usize..8,
        seed in 1u64..10_000,
    ) {
        let topo = gen::random_connected(n, extra, seed);
        let global = global_from_view_simple(&topo.view_all()).expect("non-empty");
        let rc = RouteComputer::new(&global);
        let stats = rc.stats();
        for (li, &load) in stats.link_loads.iter().enumerate() {
            prop_assert!(load > 0, "link {li} unused (seed {seed})");
        }
    }

    /// Switch-number assignment is a bijection that honors uncontested
    /// proposals.
    #[test]
    fn number_assignment_properties(
        proposals in prop::collection::vec(0u16..50, 1..40),
    ) {
        let switches: Vec<SwitchInfo> = proposals
            .iter()
            .enumerate()
            .map(|(i, &p)| SwitchInfo {
                uid: Uid::new(i as u64 + 1),
                proposed_number: p,
                parent: Uid::new(i as u64 + 1),
                parent_port: 0,
                links: vec![],
                host_ports: vec![],
            })
            .collect();
        let assigned = assign_switch_numbers(&switches);
        prop_assert_eq!(assigned.len(), switches.len());
        let values: std::collections::BTreeSet<_> = assigned.values().collect();
        prop_assert_eq!(values.len(), switches.len(), "numbers must be unique");
        // Re-proposing the assignment is a fixpoint.
        let again: Vec<SwitchInfo> = switches
            .iter()
            .map(|s| SwitchInfo {
                proposed_number: assigned[&s.uid],
                ..s.clone()
            })
            .collect();
        prop_assert_eq!(assign_switch_numbers(&again), assigned);
    }

    /// The packet codec round-trips arbitrary payloads and detects
    /// corruption.
    #[test]
    fn packet_codec_roundtrip(
        dst in 0u16..=u16::MAX,
        src in 0u16..=u16::MAX,
        payload in prop::collection::vec(any::<u8>(), 0..512),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let p = Packet::new(
            ShortAddress::from_raw(dst),
            ShortAddress::from_raw(src),
            PacketType::Data,
            payload,
        );
        let mut bytes = p.encode();
        prop_assert_eq!(Packet::decode(&bytes).unwrap(), p);
        // Any single-bit corruption is caught by the CRC.
        let i = flip_byte.index(bytes.len());
        bytes[i] ^= 1 << flip_bit;
        prop_assert!(Packet::decode(&bytes).is_err());
    }

    /// The control-message codec round-trips structured messages.
    #[test]
    fn control_msg_codec_roundtrip(
        epoch in 0u64..1_000_000,
        seq in 0u64..1_000_000,
        port in 1u8..13,
        root in 1u64..1_000_000,
        level in 0u32..64,
        is_parent in any::<bool>(),
    ) {
        let pos = TreePosition {
            root: Uid::new(root),
            level,
            parent: Uid::new(root + 1),
            parent_port: port,
        };
        for msg in [
            ControlMsg::TreePosition { epoch: Epoch(epoch), seq, from_port: port, pos },
            ControlMsg::TreePositionAck {
                epoch: Epoch(epoch),
                seq,
                is_parent,
                sender_seq: seq + 1,
                sender_from_port: port,
                sender_pos: pos,
            },
            ControlMsg::Probe { seq, origin: Uid::new(root), origin_port: port },
            ControlMsg::Srp { route: vec![port, 1, 2], hop: 1, back_route: vec![3, port], payload: SrpPayload::Ping },
        ] {
            let bytes = msg.encode();
            prop_assert_eq!(ControlMsg::decode(&bytes).unwrap(), msg);
        }
    }

    /// CRC-32 detects all single-bit and all two-bit errors in short
    /// messages (it is a distance-4 code over these lengths).
    #[test]
    fn crc_detects_small_errors(
        data in prop::collection::vec(any::<u8>(), 1..64),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        let base = crc32(&data);
        let mut one = data.clone();
        let i = a.index(one.len() * 8);
        one[i / 8] ^= 1 << (i % 8);
        prop_assert_ne!(crc32(&one), base);
        let j = b.index(one.len() * 8);
        if j != i {
            let mut two = one.clone();
            two[j / 8] ^= 1 << (j % 8);
            prop_assert_ne!(crc32(&two), base);
        }
    }

    /// Short-address packing is a bijection over the assignable range.
    #[test]
    fn short_address_packing(switch in 1u16..=0xFFE, port in 0u8..16) {
        let addr = ShortAddress::assigned(switch, port);
        prop_assert!(addr.is_assigned());
        prop_assert_eq!(addr.split_assigned(), Some((switch, port)));
        prop_assert!(!addr.is_broadcast());
        prop_assert_eq!(ShortAddress::from_bytes(addr.to_bytes()), addr);
    }

    /// The skeptic's required hold stays within `[min_hold, max_hold]`
    /// under any schedule of relapses, good streaks and idle reads
    /// (§6.5.5: backoff is capped, decay is clamped at the minimum).
    #[test]
    fn skeptic_hold_stays_within_bounds(
        min_ms in 1u64..50,
        mult in 1u64..64,
        decay_ms in 0u64..500,
        schedule in prop::collection::vec(
            (
                prop_oneof![
                    2 => Just(SkepticOp::Bad),
                    2 => Just(SkepticOp::GoodStart),
                    1 => Just(SkepticOp::Observe),
                ],
                0u64..2_000,
            ),
            1..60,
        ),
    ) {
        let min = SimDuration::from_millis(min_ms);
        let max = SimDuration::from_millis(min_ms * mult);
        let mut s = Skeptic::new(min, max, SimDuration::from_millis(decay_ms));
        let mut now = SimTime::ZERO;
        for (op, dt_ms) in schedule {
            now += SimDuration::from_millis(dt_ms);
            match op {
                SkepticOp::Bad => s.on_bad(now),
                SkepticOp::GoodStart => s.on_good_start(now),
                SkepticOp::Observe => {}
            }
            let hold = s.current_hold_at(now);
            prop_assert!(hold >= min, "hold {hold:?} fell below min {min:?}");
            prop_assert!(hold <= max, "hold {hold:?} exceeded max {max:?}");
            prop_assert_eq!(s.required_hold(), hold);
        }
    }

    /// A link flapping faster than the connectivity skeptic's window can
    /// never reach `s.switch.good`: every flap restarts the good streak,
    /// and the streak needed is at least `conn_min_hold` (§6.5.5).
    #[test]
    fn flapping_faster_than_skeptic_window_never_promotes(
        hold_ms in 30u64..150,
        flap_ms in 1u64..30,
        cycles in 10u64..40,
    ) {
        // Probe fast relative to the flapping so lack of promotion is the
        // skeptic's doing, not the probe schedule's.
        let params = AutopilotParams {
            conn_min_hold: SimDuration::from_millis(hold_ms),
            probe_interval: SimDuration::from_millis(1),
            probe_timeout: SimDuration::from_millis(2),
            ..AutopilotParams::tuned()
        };
        let mut m = ConnectivityMonitor::new(&params, Uid::new(1), 0);
        m.activate();
        let mut now = SimTime::ZERO;
        for t_ms in 1..=flap_ms * cycles {
            now += SimDuration::from_millis(1);
            if t_ms % flap_ms == 0 {
                // The sampler condemns the port mid-flap, then re-approves.
                let _ = m.deactivate(now);
                m.activate();
            }
            let (probe, _) = m.on_tick(now);
            if let Some(ControlMsg::Probe { seq, origin, origin_port }) = probe {
                let ev = m.on_reply(now, seq, origin, origin_port, Uid::new(2), 4);
                prop_assert!(
                    !matches!(ev, Some(ConnectivityEvent::BecameGood(_))),
                    "promoted at t={t_ms}ms despite {flap_ms}ms flapping < {hold_ms}ms hold"
                );
            }
            prop_assert_ne!(m.state(), PortState::SwitchGood);
        }
    }

    /// Timeline reconstruction is *total* and *ordered* for any
    /// interleaving of events: nothing is dropped, the merged output is
    /// sorted by `(time, node)`, and every epoch that appears in the
    /// input gets a report.
    #[test]
    fn timeline_reconstruction_total_and_ordered(
        raw in prop::collection::vec(
            (0u64..1_000_000, 0usize..8, any::<u8>(), 0u64..5),
            0..200,
        ),
    ) {
        let records: Vec<TraceRecord> = raw
            .iter()
            .map(|&(t, node, tag, epoch)| TraceRecord {
                time: SimTime::from_nanos(t),
                node,
                event: arbitrary_event(tag, epoch),
            })
            .collect();
        let tl = Timeline::build(&records);
        // Total: every input record survives into the merged history.
        prop_assert_eq!(tl.records.len(), records.len());
        // Ordered: sorted by (time, node).
        prop_assert!(tl
            .records
            .windows(2)
            .all(|w| (w[0].time, w[0].node) <= (w[1].time, w[1].node)));
        // Total over epochs: each epoch seen in the input has a report.
        let input_epochs: std::collections::BTreeSet<u64> =
            records.iter().filter_map(|r| r.event.epoch()).map(|e| e.0).collect();
        let report_epochs: std::collections::BTreeSet<u64> =
            tl.epochs.iter().map(|r| r.epoch.0).collect();
        prop_assert_eq!(&input_epochs, &report_epochs);
        // Reports come out ascending by epoch.
        prop_assert!(tl.epochs.windows(2).all(|w| w[0].epoch < w[1].epoch));
        // And the same input in any other order reconstructs identically.
        let mut reversed = records.clone();
        reversed.reverse();
        let tl2 = Timeline::build(&reversed);
        prop_assert_eq!(
            tl.epochs.iter().map(|r| r.phases()).collect::<Vec<_>>(),
            tl2.epochs.iter().map(|r| r.phases()).collect::<Vec<_>>()
        );
    }

    /// For well-formed histories (each node closes before it reopens
    /// within an epoch), the reconstructed report puts `closed` at or
    /// before `opened`, and `merge_sorted` is deterministic under
    /// arbitrary input permutations.
    #[test]
    fn timeline_opened_preceded_by_closed(
        // Per (node, epoch): close time and open delta, epochs ascending.
        spans in prop::collection::vec(
            (0usize..6, 1u64..1_000, 1u64..1_000),
            1..40,
        ),
        seed in 0u64..10_000,
    ) {
        let mut records = Vec::new();
        for (i, &(node, close_at, open_delta)) in spans.iter().enumerate() {
            let epoch = Epoch(i as u64 + 1);
            let base = i as u64 * 10_000;
            records.push(TraceRecord {
                time: SimTime::from_nanos(base + close_at),
                node,
                event: Event::NetworkClosed { epoch },
            });
            records.push(TraceRecord {
                time: SimTime::from_nanos(base + close_at + open_delta),
                node,
                event: Event::NetworkOpened { epoch },
            });
        }
        // Shuffle deterministically by seed: reconstruction must not care.
        let mut rng = autonet::sim::SimRng::new(seed);
        for i in (1..records.len()).rev() {
            records.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let tl = Timeline::build(&records);
        for report in &tl.epochs {
            let (Some(c), Some(o)) = (report.closed, report.opened) else {
                return Err(TestCaseError(format!(
                    "epoch {:?} lost its close/open pair",
                    report.epoch
                )));
            };
            prop_assert!(c <= o, "epoch {:?}: closed {c} after opened {o}", report.epoch);
        }
        let merged = merge_sorted(&records);
        prop_assert!(merged
            .windows(2)
            .all(|w| (w[0].time, w[0].node) <= (w[1].time, w[1].node)));
    }

    /// Histogram merge is associative (and commutative): per-node
    /// histograms can be combined in any grouping.
    #[test]
    fn histogram_merge_is_associative(
        xs in prop::collection::vec(0u64..u64::MAX / 2, 0..50),
        ys in prop::collection::vec(0u64..u64::MAX / 2, 0..50),
        zs in prop::collection::vec(0u64..u64::MAX / 2, 0..50),
    ) {
        let build = |ns: &[u64]| {
            let mut h = Histogram::new();
            for &n in ns {
                h.record(SimDuration::from_nanos(n));
            }
            h
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Commutativity falls out of elementwise addition too.
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(left.count(), (xs.len() + ys.len() + zs.len()) as u64);
    }
}

proptest! {
    // Each case is a full packet-level campaign; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Blackout windows from random hosted fault campaigns are always
    /// well-formed: ordered within their pair, non-overlapping, bounded
    /// by the run horizon, attributed to a reconfiguration epoch, and at
    /// least `min_run` probes long. (The in-engine blackout oracle checks
    /// containment in the epoch's trigger→open span; this pins down the
    /// report's own shape.)
    #[test]
    fn blackout_windows_are_well_formed_on_random_campaigns(
        n in 3usize..6,
        extra in 0usize..3,
        topo_seed in 1u64..500,
        sim_seed in 1u64..500,
        link in 0usize..2,
        cut_ms in 200u64..1_500,
    ) {
        use autonet_check::{run_packet, FaultEvent, FaultOp, OracleConfig, Scenario, TopoSpec};
        let params = autonet::net::NetParams::tuned();
        let cfg = OracleConfig::from_params(&params.autopilot);
        let scenario = Scenario {
            name: format!("prop-hosted-{topo_seed}-{sim_seed}"),
            topo: TopoSpec::RandomConnectedHosts {
                n,
                extra,
                per_switch: 1,
                seed: topo_seed,
            },
            seed: sim_seed,
            events: vec![FaultEvent {
                at_ms: cut_ms,
                op: FaultOp::LinkDown(link),
            }],
            settle_ms: 120_000,
        };
        let outcome = run_packet(&scenario, &params, &cfg);
        prop_assert!(
            outcome.passed(),
            "{}: {}",
            scenario.name,
            outcome.violation.unwrap()
        );
        let report = outcome.interruption.expect("hosted topology must probe");
        prop_assert_eq!(report.pairs.len(), n, "one ring probe pair per host");
        for w in report.windows() {
            prop_assert!(w.start <= w.end, "window runs backwards: {w:?}");
            prop_assert!(w.end <= report.horizon, "window outlives the run: {w:?}");
            prop_assert!(w.epoch.is_some(), "unexplained blackout: {w:?}");
            prop_assert!(w.probes_lost >= 2, "window below min_run: {w:?}");
        }
        for p in &report.pairs {
            prop_assert!(
                p.windows.windows(2).all(|ws| ws[0].end <= ws[1].start),
                "pair {} windows overlap or are unordered",
                p.pair
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `shrink_schedule` is idempotent and predicate-preserving for any
    /// deterministic predicate: the shrunk scenario still satisfies the
    /// predicate, and shrinking it again is a no-op. (The worst-case
    /// search leans on this: a champion minimized under its
    /// objective-floor predicate is already a fixpoint.)
    #[test]
    fn shrink_schedule_is_idempotent(
        raw in prop::collection::vec((0u64..2_000, 0u8..4, 0usize..6), 1..10),
        need in 0usize..3,
    ) {
        use autonet_check::{shrink_schedule, FaultEvent, FaultOp, Scenario, TopoSpec};
        let events: Vec<FaultEvent> = raw
            .iter()
            .map(|&(at_ms, kind, target)| FaultEvent {
                at_ms,
                op: match kind {
                    0 => FaultOp::LinkDown(target),
                    1 => FaultOp::LinkUp(target),
                    2 => FaultOp::SwitchDown(target),
                    _ => FaultOp::SwitchUp(target),
                },
            })
            .collect();
        let scenario = Scenario {
            name: "shrink-prop".into(),
            topo: TopoSpec::Ring { n: 6, seed: 0 },
            seed: 1,
            events,
            settle_ms: 1_000,
        };
        // "Still fails" = still carries at least `need` link cuts — a
        // deterministic stand-in for "objective still at its floor".
        let pred = |s: &Scenario| {
            s.events
                .iter()
                .filter(|e| matches!(e.op, FaultOp::LinkDown(_)))
                .count()
                >= need
        };
        prop_assume!(pred(&scenario));
        let once = shrink_schedule(&scenario, pred);
        prop_assert!(pred(&once), "shrinking lost the predicate");
        prop_assert!(once.events.len() <= scenario.events.len());
        let twice = shrink_schedule(&once, pred);
        prop_assert_eq!(&twice.events, &once.events, "shrink is not a fixpoint");
    }
}

proptest! {
    // Each case re-runs the full packet engine several times (the shrink
    // predicate is an engine run); keep the count small.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Shrinking a damage champion under its objective-floor predicate
    /// never lowers the measured blackout objective, and the result is a
    /// fixpoint of the same predicate — the worst-case search's champion
    /// minimization, as a property.
    #[test]
    fn shrink_preserves_blackout_objective(
        topo_seed in 1u64..200,
        sim_seed in 1u64..200,
        cut_a in 0usize..3,
        cut_b in 0usize..3,
        gap_ms in 0u64..400,
    ) {
        use autonet_check::{
            run_packet, shrink_schedule, FaultEvent, FaultOp, OracleConfig, Scenario, TopoSpec,
        };
        let params = autonet::net::NetParams::tuned();
        let cfg = OracleConfig::from_params(&params.autopilot);
        let scenario = Scenario {
            name: format!("shrink-objective-{topo_seed}-{sim_seed}"),
            topo: TopoSpec::RandomConnectedHosts {
                n: 4,
                extra: 2,
                per_switch: 1,
                seed: topo_seed,
            },
            seed: sim_seed,
            events: vec![
                FaultEvent { at_ms: 100, op: FaultOp::LinkDown(cut_a) },
                FaultEvent { at_ms: 100 + gap_ms, op: FaultOp::LinkDown(cut_b) },
            ],
            settle_ms: 120_000,
        };
        let outcome = run_packet(&scenario, &params, &cfg);
        prop_assume!(outcome.passed());
        let floor = outcome.damage.blackout_total;
        let pred = |s: &Scenario| {
            let o = run_packet(s, &params, &cfg);
            o.passed() && o.damage.blackout_total >= floor
        };
        let shrunk = shrink_schedule(&scenario, pred);
        let after = run_packet(&shrunk, &params, &cfg);
        prop_assert!(after.passed());
        prop_assert!(
            after.damage.blackout_total >= floor,
            "shrinking lowered the blackout objective: {} < {}",
            after.damage.blackout_total,
            floor
        );
        let again = shrink_schedule(&shrunk, pred);
        prop_assert_eq!(&again.events, &shrunk.events, "objective shrink is not a fixpoint");
    }
}

proptest! {
    // Each case is a full packet-level run; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The causal span tree derived from random multi-fault campaigns is
    /// always well-formed: every epoch span carries the six phases in
    /// pipeline order telescoping to the span bounds, per-node phase
    /// intervals never overlap, and nested blackouts stay inside their
    /// epoch (see `SpanTree::check_well_formed`). The Chrome-trace export
    /// of the same tree must be byte-deterministic.
    #[test]
    fn span_trees_are_well_formed_on_random_campaigns(
        n in 4usize..10,
        extra in 0usize..4,
        topo_seed in 1u64..500,
        sim_seed in 1u64..500,
        cuts in proptest::collection::vec(0usize..40, 1..4),
    ) {
        let topo = gen::random_connected(n, extra, topo_seed);
        let nlinks = topo.num_links();
        let mut net = autonet::net::Network::new(
            topo,
            autonet::net::NetParams::tuned(),
            sim_seed,
        );
        prop_assert!(
            net.run_until_stable(SimTime::from_secs(120)).is_some(),
            "bring-up converges"
        );
        let mut down: Vec<usize> = Vec::new();
        for cut in cuts {
            let l = cut % nlinks;
            let at = net.now() + SimDuration::from_millis(1);
            if down.contains(&l) {
                net.schedule_link_up(at, autonet::topo::LinkId(l));
                down.retain(|&x| x != l);
            } else {
                net.schedule_link_down(at, autonet::topo::LinkId(l));
                down.push(l);
            }
            prop_assert!(
                net.run_until_stable(net.now() + SimDuration::from_secs(120)).is_some(),
                "network heals around fault at link {l}"
            );
        }
        let timeline = Timeline::build(net.trace_log().records());
        let tree = timeline.span_tree();
        let shape = tree.check_well_formed();
        prop_assert!(shape.is_ok(), "span tree ill-formed: {}", shape.unwrap_err());
        prop_assert!(!tree.is_empty(), "bring-up alone must settle an epoch");
        prop_assert_eq!(
            tree.to_chrome_trace(),
            timeline.span_tree().to_chrome_trace(),
            "span export must be deterministic"
        );
    }
}

/// Deterministic (non-proptest) property: the reference topology builder
/// produces trees whose levels are exactly BFS distance from the minimum
/// UID, across many seeds.
#[test]
fn reference_tree_levels_are_bfs_distances() {
    for seed in 1..30 {
        let topo = gen::random_connected(14, 7, seed);
        let view = topo.view_all();
        let global = global_from_view_simple(&view).unwrap();
        let root_id = topo.switch_by_uid(global.root).unwrap();
        let dist = autonet::topo::bfs_distances(&view, root_id);
        let levels = global.levels().unwrap();
        let by_uid: BTreeMap<Uid, u32> = topo
            .switch_ids()
            .map(|s| (topo.switch(s).uid, dist[s.0].unwrap()))
            .collect();
        for (uid, level) in levels {
            assert_eq!(level, by_uid[&uid], "seed {seed}, uid {uid}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The shared route cache is byte-for-byte equivalent to from-scratch
    /// table computation (`ForwardingTable::canonical_digest`) on random
    /// connected topologies, for every switch and arbitrary live host
    /// ports.
    #[test]
    fn route_cache_matches_scratch_on_random_topologies(
        n in 2usize..20,
        extra in 0usize..10,
        seed in 1u64..10_000,
        host_lo in 1u8..11,
        host_hi in 1u8..11,
    ) {
        use autonet::autopilot::{compute_forwarding_table, RouteCache};
        let topo = gen::random_connected(n, extra, seed);
        let global = global_from_view_simple(&topo.view_all()).unwrap();
        let hosts: Vec<u8> = if host_lo <= host_hi {
            vec![host_lo, host_hi]
        } else {
            vec![host_hi]
        };
        let cache = RouteCache::new();
        for s in global.switches.iter() {
            let scratch =
                compute_forwarding_table(&global, s.uid, &hosts, RouteKind::UpDown);
            let cached = cache.table_for(&global, s.uid, &hosts);
            match (scratch, cached) {
                (Some(a), Some(b)) => prop_assert_eq!(
                    a.canonical_digest(),
                    b.canonical_digest(),
                    "switch {:?} diverged",
                    s.uid
                ),
                (None, None) => {}
                (a, b) => prop_assert!(
                    false,
                    "switch {:?}: scratch={} cached={}",
                    s.uid,
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
        prop_assert_eq!(cache.stats().builds, 1);
    }

    /// Equivalence holds across multi-fault sequences served through ONE
    /// cache — the generation rotation, promotion of healed shapes, and
    /// delta-reuse paths must all reproduce the from-scratch tables
    /// exactly, epoch after epoch.
    #[test]
    fn route_cache_matches_scratch_across_fault_sequences(
        n in 4usize..14,
        extra in 2usize..10,
        seed in 1u64..10_000,
        cuts in proptest::collection::vec(0usize..40, 1..5),
        heal_first in 0u8..2,
    ) {
        use autonet::autopilot::{compute_forwarding_table, global_from_view, RouteCache};
        use autonet::topo::LinkId;
        let topo = gen::random_connected(n, extra, seed);
        let mut view = topo.view_all();
        let cache = RouteCache::new();
        let nlinks = topo.num_links();
        let mut epoch = 1u64;
        let check_epoch = |view: &autonet::topo::NetView<'_>, epoch: u64| {
            let Some(global) = global_from_view(view, Epoch(epoch), &BTreeMap::new()) else {
                return Ok(());
            };
            for s in global.switches.iter() {
                let scratch =
                    compute_forwarding_table(&global, s.uid, &[], RouteKind::UpDown)
                        .map(|t| t.canonical_digest());
                let cached = cache
                    .table_for(&global, s.uid, &[])
                    .map(|t| t.canonical_digest());
                prop_assert_eq!(scratch, cached, "epoch {} switch {:?}", epoch, s.uid);
            }
            Ok(())
        };
        check_epoch(&view, epoch)?;
        let mut failed: Vec<LinkId> = Vec::new();
        for cut in cuts {
            let lid = LinkId(cut % nlinks);
            epoch += 1;
            if failed.contains(&lid) {
                view.repair_link(lid);
                failed.retain(|&l| l != lid);
            } else {
                view.fail_link(lid);
                failed.push(lid);
            }
            check_epoch(&view, epoch)?;
        }
        // Heal everything (possibly revisiting shapes the cache has
        // retired) and check once more.
        if heal_first == 1 {
            failed.reverse();
        }
        for lid in failed {
            view.repair_link(lid);
            epoch += 1;
            check_epoch(&view, epoch)?;
        }
    }
}

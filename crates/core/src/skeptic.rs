//! The skeptic hysteresis algorithm.
//!
//! Two instances of this algorithm keep intermittent hardware from
//! thrashing the network (companion paper §6.5.5): the *status skeptic*
//! controls how long a port must be error-free before leaving `s.dead`,
//! and the *connectivity skeptic* controls how long good probe responses
//! must continue before a port is promoted to `s.switch.good`.
//!
//! The policy: every relapse (a transition back to the bad state) doubles
//! the required holding period up to a cap; time spent in a good state
//! pays the period back down toward the minimum. A healthy port therefore
//! re-enters service after one minimum period, while a flapping port is
//! quarantined for progressively longer — responsiveness *and* stability.

use autonet_sim::{SimDuration, SimTime};

/// Exponential-backoff hysteresis controller.
///
/// # Examples
///
/// ```
/// use autonet_core::Skeptic;
/// use autonet_sim::{SimDuration, SimTime};
///
/// let mut skeptic = Skeptic::new(
///     SimDuration::from_millis(100),
///     SimDuration::from_secs(60),
///     SimDuration::from_secs(10),
/// );
/// assert_eq!(skeptic.required_hold(), SimDuration::from_millis(100));
/// // Two relapses double the quarantine twice.
/// skeptic.on_bad(SimTime::from_secs(1));
/// skeptic.on_bad(SimTime::from_secs(2));
/// assert_eq!(skeptic.required_hold(), SimDuration::from_millis(400));
/// ```
#[derive(Clone, Debug)]
pub struct Skeptic {
    min_hold: SimDuration,
    max_hold: SimDuration,
    /// Good time needed to halve the current hold.
    decay_interval: SimDuration,
    current_hold: SimDuration,
    /// Start of the current good streak, if one is in progress.
    good_since: Option<SimTime>,
}

impl Skeptic {
    /// Creates a skeptic with the given bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min_hold` is zero or exceeds `max_hold`.
    pub fn new(min_hold: SimDuration, max_hold: SimDuration, decay_interval: SimDuration) -> Self {
        assert!(
            min_hold > SimDuration::ZERO,
            "minimum hold must be positive"
        );
        assert!(min_hold <= max_hold, "min hold exceeds max");
        Skeptic {
            min_hold,
            max_hold,
            decay_interval,
            current_hold: min_hold,
            good_since: None,
        }
    }

    /// The holding period currently required before re-admission.
    pub fn required_hold(&self) -> SimDuration {
        self.current_hold
    }

    /// Records a relapse at `now`: the port misbehaved (again). Doubles
    /// the required hold, capped at the maximum, after first crediting any
    /// good streak.
    pub fn on_bad(&mut self, now: SimTime) {
        self.credit_good_time(now);
        self.good_since = None;
        self.current_hold = (self.current_hold * 2).min(self.max_hold);
    }

    /// Records that the port entered a good state at `now` (it is in
    /// service and behaving).
    pub fn on_good_start(&mut self, now: SimTime) {
        if self.good_since.is_none() {
            self.good_since = Some(now);
        }
    }

    /// Applies the decay earned by good time up to `now`.
    fn credit_good_time(&mut self, now: SimTime) {
        let Some(since) = self.good_since else {
            return;
        };
        if self.decay_interval == SimDuration::ZERO {
            self.current_hold = self.min_hold;
            self.good_since = Some(now);
            return;
        }
        let good = now.saturating_since(since);
        let halvings = good / self.decay_interval;
        for _ in 0..halvings.min(64) {
            self.current_hold = (self.current_hold / 2).max(self.min_hold);
        }
        // Keep the remainder of the streak for future credit.
        self.good_since = Some(since + self.decay_interval.saturating_mul(halvings));
    }

    /// Reads the currently required hold after crediting good time.
    pub fn current_hold_at(&mut self, now: SimTime) -> SimDuration {
        self.credit_good_time(now);
        self.current_hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    fn skeptic() -> Skeptic {
        Skeptic::new(ms(100), ms(6400), SimDuration::from_secs(10))
    }

    #[test]
    fn starts_at_minimum() {
        assert_eq!(skeptic().required_hold(), ms(100));
    }

    #[test]
    fn relapses_double_up_to_cap() {
        let mut s = skeptic();
        let expected = [200u64, 400, 800, 1600, 3200, 6400, 6400, 6400];
        for (i, &e) in expected.iter().enumerate() {
            s.on_bad(at(i as u64));
            assert_eq!(s.required_hold(), ms(e), "after relapse {}", i + 1);
        }
    }

    #[test]
    fn good_time_pays_back_down() {
        let mut s = skeptic();
        for i in 0..4 {
            s.on_bad(at(i));
        }
        assert_eq!(s.required_hold(), ms(1600));
        s.on_good_start(at(1000));
        // 20 s of good time = two halvings.
        assert_eq!(s.current_hold_at(at(21_000)), ms(400));
        // Another 20 s reaches and clamps at the minimum.
        assert_eq!(s.current_hold_at(at(41_000)), ms(100));
        assert_eq!(s.current_hold_at(at(410_000)), ms(100));
    }

    #[test]
    fn relapse_after_good_streak_credits_first() {
        let mut s = skeptic();
        s.on_bad(at(0)); // 200
        s.on_bad(at(1)); // 400
        s.on_good_start(at(10));
        // 10s good halves to 200; the relapse then doubles to 400.
        s.on_bad(at(10_010));
        assert_eq!(s.required_hold(), ms(400));
    }

    #[test]
    fn zero_decay_interval_resets_instantly() {
        let mut s = Skeptic::new(ms(100), ms(6400), SimDuration::ZERO);
        s.on_bad(at(0));
        s.on_bad(at(1));
        s.on_good_start(at(2));
        assert_eq!(s.current_hold_at(at(3)), ms(100));
    }

    #[test]
    #[should_panic(expected = "minimum hold must be positive")]
    fn zero_min_rejected() {
        let _ = Skeptic::new(SimDuration::ZERO, ms(1), ms(1));
    }
}

#!/usr/bin/env python3
"""Schema check for the machine-readable bench artifacts (BENCH_*.json).

Validates structure and value sanity so a bench that silently emits
garbage (or a kernel regression that tanks throughput to zero) fails the
gate. Usage: check_bench_schema.py FILE...
"""

import json
import sys


def fail(path, msg):
    print(f"schema check FAILED: {path}: {msg}", file=sys.stderr)
    sys.exit(1)


def require(path, obj, key, types):
    if key not in obj:
        fail(path, f"missing key {key!r}")
    if not isinstance(obj[key], types):
        fail(path, f"key {key!r} has type {type(obj[key]).__name__}")
    return obj[key]


def check_scale(path, doc):
    require(path, doc, "preset", str)
    require(path, doc, "smoke", bool)
    rows = require(path, doc, "topologies", list)
    if not rows:
        fail(path, "no topology rows")
    for row in rows:
        require(path, row, "topology", str)
        for key in ("switches", "links", "events"):
            if require(path, row, key, int) <= 0:
                fail(path, f"{row['topology']}: {key} must be positive")
        for key in (
            "bringup_sim_ms",
            "bringup_wall_s",
            "cut_sim_ms",
            "cut_wall_s",
            "events_per_sec",
            "wall_per_sim_sec",
        ):
            if require(path, row, key, (int, float)) <= 0:
                fail(path, f"{row['topology']}: {key} must be positive")
        # Kernel-telemetry attribution columns (causal-profiler PR).
        if require(path, row, "partitions", int) <= 0:
            fail(path, f"{row['topology']}: partitions must be positive")
        if require(path, row, "profile_wall_s", (int, float)) <= 0:
            fail(path, f"{row['topology']}: profile_wall_s must be positive")
        if require(path, row, "profile_events", int) <= 0:
            fail(path, f"{row['topology']}: profile_events must be positive")
        frac = require(path, row, "barrier_wait_frac", (int, float))
        if not 0.0 <= frac <= 1.0:
            fail(path, f"{row['topology']}: barrier_wait_frac out of [0, 1]")
        if require(path, row, "load_imbalance", (int, float)) < 1.0 - 1e-9:
            fail(path, f"{row['topology']}: load_imbalance below 1.0")
        quantiles = [
            require(path, row, k, (int, float))
            for k in (
                "barrier_wait_p50_ms",
                "barrier_wait_p99_ms",
                "barrier_wait_p999_ms",
            )
        ]
        if any(q < 0 for q in quantiles) or quantiles != sorted(quantiles):
            fail(path, f"{row['topology']}: barrier-wait quantiles not monotone")
        rc = row.get("route_cache")
        if rc is not None:
            for key in (
                "builds",
                "served_memo",
                "delta_reused",
                "synthesized",
                "unroutable",
            ):
                if require(path, rc, key, int) < 0:
                    fail(path, f"{row['topology']}: route_cache.{key} negative")
            for key in ("build_wall_ms", "serve_wall_ms", "delta_wall_ms"):
                if require(path, rc, key, (int, float)) < 0:
                    fail(path, f"{row['topology']}: route_cache.{key} negative")
        shards = require(path, row, "shards", list)
        if len(shards) != row["partitions"]:
            fail(path, f"{row['topology']}: shards length != partitions")
        if sum(require(path, s, "events", int) for s in shards) != row["profile_events"]:
            fail(path, f"{row['topology']}: shard events do not sum to profile total")
        for s in shards:
            for key in ("windows", "busy_windows", "mailbox_in", "mailbox_out"):
                if require(path, s, key, int) < 0:
                    fail(path, f"{row['topology']}: shard {key} negative")
            for key in ("work_ms", "barrier_wait_ms"):
                if require(path, s, key, (int, float)) < 0:
                    fail(path, f"{row['topology']}: shard {key} negative")
            util = require(path, s, "utilization", (int, float))
            if not 0.0 <= util <= 1.0:
                fail(path, f"{row['topology']}: shard utilization out of [0, 1]")


# The six stable phase tags of autonet-trace's critical path.
PHASES = {
    "detect",
    "close-propagation",
    "tree-stabilize",
    "address-assign",
    "table-distribute",
    "reopen",
}


def check_reconfig(path, doc):
    rows = require(path, doc, "presets", list)
    if not rows:
        fail(path, "no preset rows")
    for row in rows:
        preset = require(path, row, "preset", str)
        require(path, row, "topology", str)
        if require(path, row, "faults", int) <= 0:
            fail(path, f"{preset}: faults must be positive")
        for key in ("median_reconfig_ms", "median_detection_ms", "median_total_ms"):
            if require(path, row, key, (int, float)) <= 0:
                fail(path, f"{preset}: {key} must be positive")
        if require(path, row, "wall_ms", (int, float)) <= 0:
            fail(path, f"{preset}: wall_ms must be positive")
        # Tracing-off rows carry null critical-path fields; traced rows
        # must name a known phase and a positive distribute time.
        phase = require(path, row, "dominant_phase", (str, type(None)))
        if phase is not None and phase not in PHASES:
            fail(path, f"{preset}: unknown dominant_phase {phase!r}")
        dist = require(path, row, "median_table_distribute_ms", (int, float, type(None)))
        if dist is not None and dist < 0:
            fail(path, f"{preset}: median_table_distribute_ms must be >= 0")
        # Cache-off rows carry null; cache-on rows report the counters.
        cache = require(path, row, "route_cache", (dict, type(None)))
        if cache is not None:
            for key in ("builds", "served_memo", "delta_reused", "synthesized"):
                if require(path, cache, key, int) < 0:
                    fail(path, f"{preset}: route_cache.{key} must be >= 0")
            if cache["builds"] <= 0:
                fail(path, f"{preset}: route_cache on but zero builds")


def check_interruption(path, doc):
    if require(path, doc, "probe_interval_ms", (int, float)) <= 0:
        fail(path, "probe_interval_ms must be positive")
    rows = require(path, doc, "topologies", list)
    if not rows:
        fail(path, "no topology rows")
    for row in rows:
        topo = require(path, row, "topology", str)
        pairs = require(path, row, "pairs", int)
        affected = require(path, row, "affected_pairs", int)
        if pairs <= 0:
            fail(path, f"{topo}: pairs must be positive")
        if not 0 <= affected <= pairs:
            fail(path, f"{topo}: affected_pairs outside [0, pairs]")
        for key in (
            "median_blackout_ms",
            "max_blackout_ms",
            "p90_blackout_ms",
            "critical_path_ms",
        ):
            if require(path, row, key, (int, float)) <= 0:
                fail(path, f"{topo}: {key} must be positive")
        if row["median_blackout_ms"] > row["max_blackout_ms"]:
            fail(path, f"{topo}: median blackout exceeds max")
        cov = require(path, row, "critical_path_coverage", (int, float))
        if not 0.0 <= cov <= 1.0 + 1e-9:
            fail(path, f"{topo}: coverage outside [0, 1]")


def check_worst_case(path, doc):
    require(path, doc, "seed", int)
    require(path, doc, "smoke", bool)
    rows = require(path, doc, "topologies", list)
    if not rows:
        fail(path, "no topology rows")
    for row in rows:
        topo = require(path, row, "topology", str)
        events = require(path, row, "events", int)
        if not 1 <= events <= 3:
            fail(path, f"{topo}: champion must be a 1-3 event schedule, has {events}")
        worst = require(path, row, "worst_blackout_ms", (int, float))
        if worst <= 0:
            fail(path, f"{topo}: worst_blackout_ms must be positive")
        median = require(path, row, "random_median_blackout_ms", (int, float))
        if not 0 <= median <= worst:
            fail(path, f"{topo}: random median outside [0, worst]")
        if require(path, row, "affected_pairs", int) <= 0:
            fail(path, f"{topo}: affected_pairs must be positive")
        for key in ("skeptic_hold_ms", "unroutable_ms"):
            if require(path, row, key, (int, float)) < 0:
                fail(path, f"{topo}: {key} must be >= 0")
        if require(path, row, "evaluations", int) <= 0:
            fail(path, f"{topo}: evaluations must be positive")
        if require(path, row, "violations", int) < 0:
            fail(path, f"{topo}: violations must be >= 0")


def check_generic(path, doc):
    # Every bench artifact names its experiment; beyond that the bodies
    # are experiment-specific.
    require(path, doc, "experiment", str)


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(path, str(e))
        experiment = require(path, doc, "experiment", str)
        if experiment == "scale":
            check_scale(path, doc)
        elif experiment == "reconfig_time":
            check_reconfig(path, doc)
        elif experiment == "interruption":
            check_interruption(path, doc)
        elif experiment == "worst_case":
            check_worst_case(path, doc)
        else:
            check_generic(path, doc)
        print(f"schema OK: {path} ({experiment})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

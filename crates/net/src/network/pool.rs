//! Struct-of-arrays node pools for the packet-level world.
//!
//! The event loop addresses switches and hosts by dense index, and the
//! hot paths each touch only one or two fields per node: data
//! forwarding reads the table, status synthesis reads the up flag and
//! the dead-port mirror, the receive path reads and writes the CPU
//! backlog. Keeping every field in its own `Vec` (instead of a `Vec`
//! of per-node structs) means those paths scan small dense arrays and
//! never load the harness boxes at all; the harnesses themselves live
//! in an [`autonet_harness::HarnessPool`] with the same dense ids.

use std::sync::Arc;

use autonet_core::{Autopilot, AutopilotParams, RouteCache};
use autonet_harness::{HarnessPool, NodeHarness};
use autonet_host::HostController;
use autonet_sim::SimTime;
use autonet_switch::ForwardingTable;
use autonet_wire::Uid;

/// All switches, one field per array, indexed by `SwitchId.0`.
pub(super) struct SwitchPool {
    /// The control programs (take/put around entry points, dead-port
    /// mirrors) — see [`HarnessPool`].
    pub(super) nodes: HarnessPool,
    /// The currently loaded forwarding table (data-plane hot path).
    pub(super) table: Vec<ForwardingTable>,
    /// When the control processor finishes its current backlog.
    pub(super) cpu_free: Vec<SimTime>,
    /// Powered and running.
    pub(super) up: Vec<bool>,
    /// Fleet-shared route cache handed to every Autopilot (including
    /// reboots); `None` leaves each switch computing tables from scratch.
    pub(super) route_cache: Option<Arc<RouteCache>>,
}

impl SwitchPool {
    pub(super) fn new() -> Self {
        SwitchPool {
            nodes: HarnessPool::new(),
            table: Vec::new(),
            cpu_free: Vec::new(),
            up: Vec::new(),
            route_cache: None,
        }
    }

    fn fresh_harness(
        &self,
        uid: Uid,
        params: AutopilotParams,
        number_hint: u32,
        tracing: bool,
    ) -> NodeHarness {
        let mut ap = Autopilot::new(uid, params, number_hint);
        ap.set_tracing(tracing);
        if let Some(cache) = &self.route_cache {
            ap.set_route_cache(Arc::clone(cache));
        }
        NodeHarness::new(ap)
    }

    /// Appends a switch; returns its dense id.
    pub(super) fn push(
        &mut self,
        uid: Uid,
        params: AutopilotParams,
        number_hint: u32,
        cpu_free: SimTime,
        tracing: bool,
    ) -> usize {
        let h = self.fresh_harness(uid, params, number_hint, tracing);
        let s = self.nodes.push(h);
        self.table.push(ForwardingTable::new());
        self.cpu_free.push(cpu_free);
        self.up.push(true);
        s
    }

    /// Reboots slot `s` with a fresh Autopilot: new harness, condemned
    /// ports, empty table, idle CPU, powered up.
    pub(super) fn reset_slot(
        &mut self,
        s: usize,
        uid: Uid,
        params: AutopilotParams,
        now: SimTime,
        tracing: bool,
    ) {
        let h = self.fresh_harness(uid, params, s as u32, tracing);
        self.nodes.reset(s, h);
        self.table[s] = ForwardingTable::new();
        self.cpu_free[s] = now;
        self.up[s] = true;
    }

    /// Number of switches.
    pub(super) fn len(&self) -> usize {
        self.up.len()
    }

    /// Switch `s`'s control program, for inspection.
    pub(super) fn autopilot(&self, s: usize) -> &Autopilot {
        self.nodes.autopilot(s)
    }

    /// Switch `s`'s control program, mutably (SRP reply draining).
    pub(super) fn autopilot_mut(&mut self, s: usize) -> &mut Autopilot {
        self.nodes.autopilot_mut(s)
    }
}

/// All hosts, one field per array, indexed by `HostId.0`.
pub(super) struct HostPool {
    /// The host controllers.
    pub(super) ctl: Vec<HostController>,
    /// Powered and running.
    pub(super) up: Vec<bool>,
}

impl HostPool {
    pub(super) fn new() -> Self {
        HostPool {
            ctl: Vec::new(),
            up: Vec::new(),
        }
    }

    /// Appends a host; returns its dense id.
    pub(super) fn push(&mut self, ctl: HostController) -> usize {
        self.ctl.push(ctl);
        self.up.push(true);
        self.ctl.len() - 1
    }

    /// Number of hosts.
    pub(super) fn len(&self) -> usize {
        self.up.len()
    }
}

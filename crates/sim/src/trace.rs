//! A timestamped circular trace log.
//!
//! Autopilot kept an in-memory circular log of reconfiguration events on
//! every switch; retrieving and merging those logs (after normalizing clocks)
//! was the project's primary debugging tool (companion paper §6.7). This is
//! the same facility for the simulation: every component can append
//! timestamped entries, and an experiment can merge the logs of all nodes
//! into one global history.
//!
//! The log is generic over the entry payload `E`. Layers above the kernel
//! log *typed* events (see `autonet-core`'s event taxonomy); plain strings
//! remain the default payload for ad-hoc instrumentation, and any payload
//! implementing [`Display`](fmt::Display) keeps the human-readable merged
//! view.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One timestamped log entry carrying a payload of type `E`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry<E = String> {
    /// When the entry was logged.
    pub time: SimTime,
    /// Which component logged it (e.g. a switch index).
    pub source: u32,
    /// The logged payload: a typed event, or a plain message string.
    pub event: E,
}

impl<E: fmt::Display> fmt::Display for TraceEntry<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] #{}: {}", self.time, self.source, self.event)
    }
}

/// A bounded circular log of [`TraceEntry`] values.
///
/// When full, the oldest entries are dropped, exactly like the fixed-size
/// circular log in a real switch's control-processor memory.
#[derive(Clone, Debug)]
pub struct TraceLog<E = String> {
    entries: VecDeque<TraceEntry<E>>,
    capacity: usize,
    dropped: u64,
    appended: u64,
    enabled: bool,
}

impl<E> TraceLog<E> {
    /// Creates a log that retains at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            // The full ring is reserved up front: `capacity` is the
            // retention bound, so the ring must actually hold that many
            // entries before wrapping (an earlier version capped this
            // allocation at 4096, which read as capping retention too).
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            appended: 0,
            enabled: true,
        }
    }

    /// Creates a log that records nothing (for performance runs). No
    /// buffer is allocated; [`log`](TraceLog::log) is a branch and a
    /// return.
    pub fn disabled() -> Self {
        let mut log = TraceLog::new(0);
        log.enabled = false;
        log
    }

    /// Returns whether the log is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Appends an entry, evicting the oldest if at capacity.
    pub fn log(&mut self, time: SimTime, source: u32, event: impl Into<E>) {
        if !self.enabled || self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            time,
            source,
            event: event.into(),
        });
        self.appended += 1;
    }

    /// Returns the retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry<E>> {
        self.entries.iter()
    }

    /// Total entries ever appended (retained + evicted). Monotonic, so it
    /// serves as a cursor for incremental consumers: remember the value,
    /// and later fetch everything newer with
    /// [`entries_since`](TraceLog::entries_since).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Returns the entries appended after the `cursor` obtained from
    /// [`appended`](TraceLog::appended), oldest first. Entries already
    /// evicted by wraparound are silently unavailable.
    pub fn entries_since(&self, cursor: u64) -> impl Iterator<Item = &TraceEntry<E>> {
        let fresh = (self.appended - cursor.min(self.appended)) as usize;
        let start = self.entries.len().saturating_sub(fresh);
        self.entries.range(start..)
    }

    /// Returns the number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns how many entries have been evicted by wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all retained entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Merges several logs into one globally time-ordered history.
    ///
    /// Ties are broken by source id and then by each log's internal order,
    /// mirroring the timestamp-normalized merged log described in §6.7.
    pub fn merge<'a>(logs: impl IntoIterator<Item = &'a TraceLog<E>>) -> Vec<TraceEntry<E>>
    where
        E: Clone + 'a,
    {
        let mut all: Vec<TraceEntry<E>> = logs
            .into_iter()
            .flat_map(|l| l.entries.iter().cloned())
            .collect();
        all.sort_by_key(|a| (a.time, a.source));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_orders_entries() {
        let mut log = TraceLog::<String>::new(8);
        log.log(SimTime::from_nanos(1), 0, "boot");
        log.log(SimTime::from_nanos(2), 0, "probe");
        assert_eq!(log.len(), 2);
        let texts: Vec<_> = log.entries().map(|e| e.event.as_str()).collect();
        assert_eq!(texts, vec!["boot", "probe"]);
    }

    #[test]
    fn wraps_when_full() {
        let mut log = TraceLog::<String>::new(3);
        for i in 0..5u64 {
            log.log(SimTime::from_nanos(i), 0, format!("e{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let texts: Vec<_> = log.entries().map(|e| e.event.as_str()).collect();
        assert_eq!(texts, vec!["e2", "e3", "e4"]);
    }

    #[test]
    fn large_capacity_retains_full_ring() {
        // Regression: the ring must retain `capacity` entries even past
        // the old 4096 pre-allocation cap. Fill an 8192-entry ring past
        // wraparound and check both retention and eviction accounting.
        let cap = 8192usize;
        let mut log = TraceLog::<String>::new(cap);
        for i in 0..(cap as u64 + 100) {
            log.log(SimTime::from_nanos(i), 0, format!("e{i}"));
        }
        assert_eq!(log.len(), cap);
        assert_eq!(log.dropped(), 100);
        assert_eq!(log.appended(), cap as u64 + 100);
        let first = log.entries().next().unwrap();
        assert_eq!(first.event, "e100");
        let last = log.entries().last().unwrap();
        assert_eq!(last.event, format!("e{}", cap + 99));
    }

    #[test]
    fn disabled_log_records_nothing_and_allocates_nothing() {
        let mut log = TraceLog::<String>::disabled();
        log.log(SimTime::ZERO, 0, "x");
        assert!(log.is_empty());
        assert!(!log.is_enabled());
        assert_eq!(log.appended(), 0);
        assert_eq!(log.entries.capacity(), 0);
    }

    #[test]
    fn entries_since_cursor() {
        let mut log = TraceLog::<String>::new(3);
        log.log(SimTime::from_nanos(1), 0, "a");
        let cursor = log.appended();
        assert_eq!(cursor, 1);
        log.log(SimTime::from_nanos(2), 0, "b");
        log.log(SimTime::from_nanos(3), 0, "c");
        let fresh: Vec<_> = log.entries_since(cursor).map(|e| e.event.clone()).collect();
        assert_eq!(fresh, vec!["b", "c"]);
        // Wraparound past the cursor: evicted entries are unavailable, the
        // retained tail still comes back.
        log.log(SimTime::from_nanos(4), 0, "d");
        log.log(SimTime::from_nanos(5), 0, "e");
        let fresh: Vec<_> = log.entries_since(cursor).map(|e| e.event.clone()).collect();
        assert_eq!(fresh, vec!["c", "d", "e"]);
        // A fully caught-up cursor yields nothing.
        assert_eq!(log.entries_since(log.appended()).count(), 0);
    }

    #[test]
    fn merge_orders_across_sources() {
        let mut a = TraceLog::<String>::new(8);
        let mut b = TraceLog::<String>::new(8);
        a.log(SimTime::from_nanos(10), 1, "a1");
        b.log(SimTime::from_nanos(5), 2, "b1");
        a.log(SimTime::from_nanos(20), 1, "a2");
        b.log(SimTime::from_nanos(20), 2, "b2");
        let merged = TraceLog::merge([&a, &b]);
        let texts: Vec<_> = merged.iter().map(|e| e.event.as_str()).collect();
        assert_eq!(texts, vec!["b1", "a1", "a2", "b2"]);
    }

    #[test]
    fn display_formats_entry() {
        let e = TraceEntry {
            time: SimTime::from_micros(3),
            source: 7,
            event: "hello".to_string(),
        };
        assert_eq!(e.to_string(), "[3.000us] #7: hello");
    }
}

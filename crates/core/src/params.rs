//! Tunable parameters of the Autopilot control program.

use autonet_sim::SimDuration;

/// How the reconfiguration decides it is finished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminationMode {
    /// The paper's contribution: the stability protocol detects the exact
    /// moment the spanning tree is complete.
    Stability,
    /// The Perlman-style baseline: no node can ever be sure the tree has
    /// settled, so each node reports (and the root completes) after this
    /// quiescence timeout since its last observed change. Too small a
    /// timeout opens the network prematurely with an incomplete topology;
    /// a safe timeout delays reopening far past actual convergence.
    RootQuiescence(SimDuration),
}

/// Timing and policy parameters of one Autopilot instance.
///
/// The defaults are the "tuned" values scaled from the paper's hardware:
/// a 12.5 MHz 68000 with 1.2 ms timeout resolution achieving ~170 ms
/// reconfigurations of the 30-switch SRC network. The `naive()` and
/// `optimized()` presets reproduce the 5 s → 0.5 s progression of §6.6.5
/// (see `autonet-net`'s CPU model for the matching processing costs).
#[derive(Clone, Copy, Debug)]
pub struct AutopilotParams {
    /// Granularity of the control program's timer queue (paper: 1.2 ms).
    pub timer_resolution: SimDuration,
    /// How often the status sampler polls the hardware status bits.
    pub sampling_interval: SimDuration,
    /// Consecutive clean samples needed in `s.checking` to classify a port.
    pub classify_samples: u32,
    /// Consecutive stop-only sampling intervals before a blocked port is
    /// declared dead (blockage removal, §6.5.3).
    pub blockage_samples: u32,
    /// Status skeptic: minimum error-free hold before `s.dead` →
    /// `s.checking`.
    pub status_min_hold: SimDuration,
    /// Status skeptic: maximum hold.
    pub status_max_hold: SimDuration,
    /// Status skeptic: good time that halves the hold.
    pub status_decay: SimDuration,
    /// Connectivity monitor: probe period per `s.switch.*` port.
    pub probe_interval: SimDuration,
    /// Probe reply timeout.
    pub probe_timeout: SimDuration,
    /// Missed replies in a row before a good port is demoted.
    pub probe_miss_limit: u32,
    /// Connectivity skeptic: minimum good-response period before
    /// `s.switch.who` → `s.switch.good`.
    pub conn_min_hold: SimDuration,
    /// Connectivity skeptic: maximum hold.
    pub conn_max_hold: SimDuration,
    /// Connectivity skeptic: good time that halves the hold.
    pub conn_decay: SimDuration,
    /// Retransmission period for unacknowledged reconfiguration messages.
    pub retransmit_interval: SimDuration,
    /// Termination detection discipline.
    pub termination: TerminationMode,
}

impl AutopilotParams {
    /// The tuned production configuration (~0.17 s reconfigurations).
    pub fn tuned() -> Self {
        AutopilotParams {
            timer_resolution: SimDuration::from_micros(1200),
            sampling_interval: SimDuration::from_millis(5),
            classify_samples: 3,
            blockage_samples: 40,
            status_min_hold: SimDuration::from_millis(100),
            status_max_hold: SimDuration::from_secs(60),
            status_decay: SimDuration::from_secs(10),
            probe_interval: SimDuration::from_millis(50),
            probe_timeout: SimDuration::from_millis(100),
            probe_miss_limit: 3,
            conn_min_hold: SimDuration::from_millis(100),
            conn_max_hold: SimDuration::from_secs(60),
            conn_decay: SimDuration::from_secs(10),
            retransmit_interval: SimDuration::from_millis(10),
            termination: TerminationMode::Stability,
        }
    }

    /// The first, easy-to-debug implementation (§6.6.5: ~5 s): coarse
    /// timers and conservative retransmission.
    pub fn naive() -> Self {
        AutopilotParams {
            timer_resolution: SimDuration::from_millis(10),
            sampling_interval: SimDuration::from_millis(100),
            retransmit_interval: SimDuration::from_millis(250),
            probe_interval: SimDuration::from_millis(500),
            probe_timeout: SimDuration::from_secs(2),
            ..AutopilotParams::tuned()
        }
    }

    /// The intermediate optimized implementation (~0.5 s).
    pub fn optimized() -> Self {
        AutopilotParams {
            timer_resolution: SimDuration::from_millis(2),
            sampling_interval: SimDuration::from_millis(20),
            retransmit_interval: SimDuration::from_millis(50),
            probe_interval: SimDuration::from_millis(100),
            probe_timeout: SimDuration::from_millis(300),
            ..AutopilotParams::tuned()
        }
    }

    /// The generation after `tuned()`: the shared route cache removes the
    /// per-switch table recomputation from the control processor's epoch
    /// budget (§6.6.5's progression continued), so the freed CPU headroom
    /// is reinvested in a finer timer wheel and snappier retransmission.
    pub fn incremental() -> Self {
        AutopilotParams {
            timer_resolution: SimDuration::from_micros(600),
            retransmit_interval: SimDuration::from_millis(5),
            ..AutopilotParams::tuned()
        }
    }
}

impl Default for AutopilotParams {
    fn default() -> Self {
        AutopilotParams::tuned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_aggressiveness() {
        let naive = AutopilotParams::naive();
        let opt = AutopilotParams::optimized();
        let tuned = AutopilotParams::tuned();
        assert!(naive.retransmit_interval > opt.retransmit_interval);
        assert!(opt.retransmit_interval > tuned.retransmit_interval);
        assert!(naive.timer_resolution > tuned.timer_resolution);
        assert_eq!(tuned.termination, TerminationMode::Stability);
        let inc = AutopilotParams::incremental();
        assert!(tuned.retransmit_interval > inc.retransmit_interval);
        assert!(tuned.timer_resolution > inc.timer_resolution);
    }
}

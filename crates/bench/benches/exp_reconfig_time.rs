//! E1 — Reconfiguration time across implementation generations (§6.6.5).
//!
//! Paper: on the 30-switch SRC network (≈4×8 torus, max switch-to-switch
//! distance 6), the first Autopilot took ~5 s per reconfiguration, the
//! optimized version ~0.5 s, and further tuning reached ~0.17 s. We rebuild
//! the same network and replay the same progression with the matching
//! control-processor cost and timer presets.

use autonet_bench::{
    converge, mean, measure_reconfiguration, median, ms, ms_f64, print_table, write_bench_json,
};
use autonet_net::NetParams;
use autonet_topo::{gen, LinkId};

fn measure_preset(
    name: &str,
    params: NetParams,
    paper: &str,
    rows: &mut Vec<Vec<String>>,
    json: &mut Vec<String>,
) {
    let mut reconfig = Vec::new();
    let mut detection = Vec::new();
    let mut total = Vec::new();
    // Three independent faults on different links of fresh networks.
    for (i, link) in [0usize, 11, 23].into_iter().enumerate() {
        let topo = gen::src_network(1991);
        let mut net = converge(topo, params, 100 + i as u64);
        if let Some(m) = measure_reconfiguration(&mut net, LinkId(link)) {
            reconfig.push(m.reconfiguration);
            detection.push(m.detection);
            total.push(m.total);
        }
    }
    rows.push(vec![
        name.to_string(),
        paper.to_string(),
        ms(mean(&reconfig)),
        ms(mean(&detection)),
        ms(mean(&total)),
    ]);
    json.push(format!(
        "    {{\"preset\": {name:?}, \"topology\": \"src-30\", \"faults\": {}, \
         \"median_reconfig_ms\": {:.3}, \"median_detection_ms\": {:.3}, \"median_total_ms\": {:.3}}}",
        reconfig.len(),
        ms_f64(median(&reconfig)),
        ms_f64(median(&detection)),
        ms_f64(median(&total)),
    ));
}

fn main() {
    println!("E1: reconfiguration time on the 30-switch SRC network");
    println!("(single link failure; time from fault to every switch reopened)");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    measure_preset(
        "naive",
        NetParams::naive(),
        "~5000 ms",
        &mut rows,
        &mut json,
    );
    measure_preset(
        "optimized",
        NetParams::optimized(),
        "~500 ms",
        &mut rows,
        &mut json,
    );
    measure_preset("tuned", NetParams::tuned(), "~170 ms", &mut rows, &mut json);
    // The perf configuration: typed event tracing off (zero-capacity
    // rings, nothing reaches the spine). Virtual times must match the
    // tuned row exactly — tracing is observability, not behavior.
    measure_preset(
        "tuned, tracing off",
        NetParams {
            tracing: false,
            ..NetParams::tuned()
        },
        "~170 ms",
        &mut rows,
        &mut json,
    );
    print_table(
        "E1: SRC network reconfiguration time, paper vs measured",
        &[
            "implementation",
            "paper reconfig",
            "measured reconfig",
            "detection",
            "fault-to-open",
        ],
        &rows,
    );
    println!(
        "\nShape check: each generation should improve by roughly an order\n\
         of magnitude, with the tuned version well under one second."
    );
    let body = format!(
        "{{\n  \"experiment\": \"reconfig_time\",\n  \"unit\": \"ms\",\n  \"presets\": [\n{}\n  ]\n}}\n",
        json.join(",\n")
    );
    let path = write_bench_json("reconfig", &body);
    println!("wrote {}", path.display());
}

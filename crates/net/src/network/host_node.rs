//! Host controllers: boot/tick cadence, packet delivery and data
//! injection. Host state lives struct-of-arrays in the
//! [`HostPool`](super::pool::HostPool), indexed by dense id.

use autonet_host::{EthFrame, HostAction, HostController, IP_ETHERTYPE};
use autonet_sim::{Scheduler, SimTime};
use autonet_topo::HostId;
use autonet_wire::{Packet, Uid};

use super::events::{DeliveryRecord, Event, NetEventKind, Via};
use super::{NetWorld, Network};

impl NetWorld {
    /// Executes a batch of host controller actions.
    pub(super) fn apply_host_actions(
        &mut self,
        now: SimTime,
        h: usize,
        actions: Vec<HostAction>,
        sched: &mut Scheduler<'_, Event>,
    ) {
        for action in actions {
            match action {
                HostAction::Transmit { port, packet } => {
                    self.transmit_from_host(now, h, port, packet, sched);
                }
                HostAction::Deliver(frame) => {
                    let tag = if frame.payload.len() >= 8 {
                        u64::from_be_bytes(frame.payload[..8].try_into().expect("8 bytes"))
                    } else {
                        0
                    };
                    if tag & super::probes::PROBE_TAG_BIT != 0 {
                        // A probe frame: record its fate, keep it out of
                        // the workload counters and delivery log.
                        self.note_probe_delivery(now, h, tag);
                        continue;
                    }
                    self.stats.data_delivered += 1;
                    self.deliveries.push(DeliveryRecord {
                        time: now,
                        host: HostId(h),
                        src: frame.src,
                        tag,
                        len: frame.payload.len(),
                    });
                }
                HostAction::PortSwitched { active } => {
                    self.log_event(now, NetEventKind::HostPortSwitched(HostId(h), active));
                }
                HostAction::AddressLearned(addr) => {
                    self.log_event(now, NetEventKind::HostAddressLearned(HostId(h), addr));
                }
            }
        }
    }

    pub(super) fn on_host_boot(
        &mut self,
        now: SimTime,
        h: usize,
        sched: &mut Scheduler<'_, Event>,
    ) {
        if !self.hosts.up[h] {
            return;
        }
        let actions = self.hosts.ctl[h].boot(now);
        self.apply_host_actions(now, h, actions, sched);
        sched.after(self.params.host_tick, Event::HostTick { h });
    }

    pub(super) fn on_host_tick(
        &mut self,
        now: SimTime,
        h: usize,
        sched: &mut Scheduler<'_, Event>,
    ) {
        if !self.hosts.up[h] {
            return;
        }
        let actions = self.hosts.ctl[h].on_tick(now);
        self.apply_host_actions(now, h, actions, sched);
        sched.after(self.params.host_tick, Event::HostTick { h });
    }

    pub(super) fn on_host_rx(
        &mut self,
        now: SimTime,
        h: usize,
        cport: usize,
        packet: Packet,
        via: Via,
        sched: &mut Scheduler<'_, Event>,
    ) {
        if !self.hosts.up[h] || !self.via_intact(via) {
            self.stats.lost_in_flight += 1;
            return;
        }
        let actions = self.hosts.ctl[h].on_packet(now, cport, &packet);
        self.apply_host_actions(now, h, actions, sched);
    }

    pub(super) fn on_host_send(
        &mut self,
        now: SimTime,
        h: usize,
        dst: Uid,
        len: usize,
        tag: u64,
        sched: &mut Scheduler<'_, Event>,
    ) {
        if !self.hosts.up[h] {
            return;
        }
        let mut payload = Vec::with_capacity(len.max(8));
        payload.extend_from_slice(&tag.to_be_bytes());
        payload.resize(len.max(8), 0);
        let frame = EthFrame::new(dst, self.hosts.ctl[h].uid(), IP_ETHERTYPE, payload);
        self.stats.data_sent += 1;
        let actions = self.hosts.ctl[h].send(now, frame);
        self.apply_host_actions(now, h, actions, sched);
    }
}

impl Network {
    /// A host's controller, for inspection.
    pub fn host(&self, h: HostId) -> &HostController {
        &self.sim.world().hosts.ctl[h.0]
    }

    /// Schedules a host data frame.
    pub fn schedule_host_send(&mut self, at: SimTime, h: HostId, dst: Uid, len: usize, tag: u64) {
        self.sim.schedule_at(
            at,
            Event::HostSend {
                h: h.0,
                dst,
                len,
                tag,
            },
        );
    }
}

//! Physical link timing.
//!
//! Autonet links run at 100 Mbit/s: one 9-bit slot every 80 ns. Propagation
//! delay follows the paper's constant: `W = 64.1 · L` slot times for a cable
//! of `L` kilometers (companion paper §6.2), derived from the speed of light
//! and the velocity factor of fiber. Coax links span up to 100 m; fiber up
//! to 2 km.

/// Duration of one slot (one byte time at 100 Mbit/s), in nanoseconds.
pub const SLOT_NS: u64 = 80;

/// Slot-per-kilometer propagation constant from the paper (`W = 64.1 L`).
const SLOTS_PER_KM: f64 = 64.1;

/// Timing parameters of one link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkTiming {
    /// Cable length in kilometers.
    pub length_km: f64,
}

impl LinkTiming {
    /// A 100 m coaxial link — the building-scale default.
    pub fn coax_100m() -> Self {
        LinkTiming { length_km: 0.1 }
    }

    /// A 2 km fiber link — the maximum the flow-control engineering allows.
    pub fn fiber_2km() -> Self {
        LinkTiming { length_km: 2.0 }
    }

    /// Creates timing for an arbitrary cable length.
    ///
    /// # Panics
    ///
    /// Panics if `length_km` is negative or not finite.
    pub fn with_length_km(length_km: f64) -> Self {
        assert!(
            length_km.is_finite() && length_km >= 0.0,
            "invalid link length: {length_km}"
        );
        LinkTiming { length_km }
    }

    /// One-way propagation delay in whole slots (`ceil(64.1 · L)`).
    pub fn latency_slots(&self) -> u64 {
        (SLOTS_PER_KM * self.length_km).ceil() as u64
    }

    /// One-way propagation delay in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.latency_slots() * SLOT_NS
    }

    /// Time to clock `bytes` data bytes onto the link, in nanoseconds.
    ///
    /// Accounts for the flow-control slots stolen from the data stream: only
    /// `S − 1` of every `S` slots carry data (§6.1), so the effective data
    /// rate is fractionally below 100 Mbit/s.
    pub fn transmission_ns(&self, bytes: usize) -> u64 {
        let s = crate::symbol::FLOW_CONTROL_INTERVAL;
        let data_slots = bytes as u64;
        // Every (S-1) data slots are accompanied by one flow-control slot.
        let fc_slots = data_slots / (s - 1);
        (data_slots + fc_slots) * SLOT_NS
    }

    /// End-to-end time for the first byte of a message to arrive:
    /// propagation only (cut-through means we do not wait for the tail).
    pub fn first_byte_ns(&self) -> u64 {
        self.latency_ns()
    }

    /// End-to-end time for an entire `bytes`-byte message to arrive.
    pub fn message_ns(&self, bytes: usize) -> u64 {
        self.latency_ns() + self.transmission_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constant_for_two_km() {
        // §6.2: W = 64.1 L ⇒ 2 km ≈ 128.2 ⇒ 129 whole slots.
        assert_eq!(LinkTiming::fiber_2km().latency_slots(), 129);
    }

    #[test]
    fn coax_is_short() {
        let t = LinkTiming::coax_100m();
        assert_eq!(t.latency_slots(), 7);
        assert_eq!(t.latency_ns(), 7 * SLOT_NS);
    }

    #[test]
    fn zero_length_has_zero_latency() {
        assert_eq!(LinkTiming::with_length_km(0.0).latency_ns(), 0);
    }

    #[test]
    fn transmission_accounts_for_flow_control_slots() {
        let t = LinkTiming::coax_100m();
        // 255 data bytes fit between flow-control slots exactly once.
        assert_eq!(t.transmission_ns(255), 256 * SLOT_NS);
        assert_eq!(t.transmission_ns(1), SLOT_NS);
    }

    #[test]
    fn message_time_combines_latency_and_transmission() {
        let t = LinkTiming::with_length_km(1.0);
        assert_eq!(t.message_ns(100), t.latency_ns() + t.transmission_ns(100));
    }

    #[test]
    #[should_panic(expected = "invalid link length")]
    fn negative_length_rejected() {
        let _ = LinkTiming::with_length_km(-1.0);
    }
}

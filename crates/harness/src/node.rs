//! One Autopilot plus the machinery to run it over any [`Environment`].

use autonet_core::{Action, Autopilot, ControlMsg, SrpPayload};
use autonet_sim::{SimDuration, SimTime};
use autonet_switch::LinkUnitStatus;
use autonet_wire::{PortIndex, MAX_PORTS};

use crate::env::Environment;

/// Owns one [`Autopilot`] and drives it over an [`Environment`]:
/// executes every [`Action`] the control program emits and keeps the
/// tick/sample cadence bookkeeping derived from its parameters.
///
/// Backends choose *when* to call the entry points (an event queue
/// schedules them in the packet-level network; the slot loop polls
/// [`poll`](NodeHarness::poll) every slot), but the translation from
/// actions to environment calls lives here exactly once.
pub struct NodeHarness {
    ap: Autopilot,
    next_tick: SimTime,
    next_sample: SimTime,
    /// How many trace-ring entries have already been forwarded to the
    /// environment (the ring wraps; this cursor counts appends, so the
    /// flush after each entry point never misses or repeats an event).
    trace_cursor: u64,
}

impl NodeHarness {
    /// Wraps a freshly constructed Autopilot.
    pub fn new(ap: Autopilot) -> Self {
        NodeHarness {
            ap,
            next_tick: SimTime::ZERO,
            next_sample: SimTime::ZERO,
            trace_cursor: 0,
        }
    }

    /// The control program, for inspection.
    pub fn autopilot(&self) -> &Autopilot {
        &self.ap
    }

    /// The control program, mutably (trace-log draining, SRP replies).
    pub fn autopilot_mut(&mut self) -> &mut Autopilot {
        &mut self.ap
    }

    /// The timer-tick period this Autopilot runs at.
    pub fn tick_period(&self) -> SimDuration {
        self.ap.params().timer_resolution
    }

    /// The status-sampling period this Autopilot runs at.
    pub fn sample_period(&self) -> SimDuration {
        self.ap.params().sampling_interval
    }

    /// When the next timer tick is due (set by [`boot`](Self::boot)).
    pub fn next_tick(&self) -> SimTime {
        self.next_tick
    }

    /// When the next status sample is due.
    pub fn next_sample(&self) -> SimTime {
        self.next_sample
    }

    /// Boots the control program and starts both cadences.
    pub fn boot<E: Environment>(&mut self, now: SimTime, env: &mut E) {
        let actions = self.ap.boot(now);
        self.execute(now, actions, env);
        self.next_tick = now + self.tick_period();
        self.next_sample = now + self.sample_period();
    }

    /// One timer tick (probe/retransmit timers). The caller either honors
    /// [`next_tick`](Self::next_tick) or uses [`poll`](Self::poll).
    pub fn tick<E: Environment>(&mut self, now: SimTime, env: &mut E) {
        let actions = self.ap.on_tick(now);
        self.execute(now, actions, env);
        self.next_tick = now + self.tick_period();
    }

    /// One full status-sampling round: reads every port's hardware status
    /// from the environment, feeds it to the sampler tower, and pushes the
    /// resulting dead/alive verdicts back down (the `idhy` hardware hook).
    pub fn sample<E: Environment>(&mut self, now: SimTime, env: &mut E) {
        for port in 1..MAX_PORTS as PortIndex {
            if let Some(status) = env.read_status(now, port) {
                self.sample_port(now, port, status, env);
            }
        }
        let is_root = self.ap.global().is_some_and(|g| g.root == self.ap.uid());
        env.sample_datapath(now, is_root);
        self.next_sample = now + self.sample_period();
    }

    /// Feeds one port's status snapshot (for backends that synthesize
    /// statuses out-of-band instead of through `read_status`).
    pub fn sample_port<E: Environment>(
        &mut self,
        now: SimTime,
        port: PortIndex,
        status: LinkUnitStatus,
        env: &mut E,
    ) {
        let actions = self.ap.on_status_sample(now, port, status);
        self.execute(now, actions, env);
        let dead = self.ap.port_state(port) == autonet_core::PortState::Dead;
        env.set_port_dead(port, dead);
    }

    /// Fires whichever cadences are due at `now`; returns `true` if any
    /// fired. Poll-style backends (the slot-level network) call this every
    /// step instead of scheduling tick/sample events.
    pub fn poll<E: Environment>(&mut self, now: SimTime, env: &mut E) -> bool {
        let mut fired = false;
        if now >= self.next_tick {
            self.tick(now, env);
            fired = true;
        }
        if now >= self.next_sample {
            self.sample(now, env);
            fired = true;
        }
        fired
    }

    /// Delivers one decoded control message that arrived on `port`.
    pub fn deliver<E: Environment>(
        &mut self,
        now: SimTime,
        port: PortIndex,
        msg: &ControlMsg,
        env: &mut E,
    ) {
        let actions = self.ap.on_packet(now, port, msg);
        self.execute(now, actions, env);
    }

    /// Originates a source-routed request from this switch's control
    /// processor.
    pub fn srp_request<E: Environment>(
        &mut self,
        now: SimTime,
        route: Vec<PortIndex>,
        payload: SrpPayload,
        env: &mut E,
    ) {
        let actions = self.ap.srp_request(route, payload);
        self.execute(now, actions, env);
    }

    /// Executes a batch of Autopilot actions against the environment —
    /// the single translation point both simulation backends share —
    /// then forwards any typed events the entry point traced.
    fn execute<E: Environment>(&mut self, now: SimTime, actions: Vec<Action>, env: &mut E) {
        for action in actions {
            match action {
                Action::Send { port, msg } => env.send(now, port, &msg),
                Action::LoadTable(table) => env.load_table(now, table),
                Action::NetworkOpen { epoch } => env.network_opened(now, epoch),
                Action::NetworkClosed => env.network_closed(now),
            }
        }
        for entry in self.ap.log.entries_since(self.trace_cursor) {
            env.trace(entry.time, &entry.event);
        }
        self.trace_cursor = self.ap.log.appended();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autonet_core::{AutopilotParams, Epoch, Event};
    use autonet_switch::ForwardingTable;
    use autonet_wire::Uid;

    /// Records every environment call for inspection.
    #[derive(Default)]
    struct Recorder {
        sends: Vec<(PortIndex, ControlMsg)>,
        tables: usize,
        opened: Vec<Epoch>,
        closed: usize,
        dead: Vec<(PortIndex, bool)>,
        status: LinkUnitStatus,
        traced: Vec<(SimTime, Event)>,
    }

    impl Environment for Recorder {
        fn send(&mut self, _now: SimTime, port: PortIndex, msg: &ControlMsg) {
            self.sends.push((port, msg.clone()));
        }

        fn load_table(&mut self, _now: SimTime, _table: ForwardingTable) {
            self.tables += 1;
        }

        fn read_status(&mut self, _now: SimTime, _port: PortIndex) -> Option<LinkUnitStatus> {
            Some(self.status)
        }

        fn set_port_dead(&mut self, port: PortIndex, dead: bool) {
            self.dead.push((port, dead));
        }

        fn network_opened(&mut self, _now: SimTime, epoch: Epoch) {
            self.opened.push(epoch);
        }

        fn network_closed(&mut self, _now: SimTime) {
            self.closed += 1;
        }

        fn trace(&mut self, time: SimTime, event: &Event) {
            self.traced.push((time, event.clone()));
        }
    }

    fn harness() -> NodeHarness {
        NodeHarness::new(Autopilot::new(Uid::new(7), AutopilotParams::tuned(), 0))
    }

    #[test]
    fn boot_executes_actions_and_arms_cadences() {
        let mut h = harness();
        let mut env = Recorder::default();
        let t0 = SimTime::from_millis(3);
        h.boot(t0, &mut env);
        // A lone switch configures itself immediately: table load + open.
        assert!(env.tables > 0, "boot must load a table");
        assert_eq!(env.opened.len(), 1, "{:?}", env.opened);
        assert!(h.autopilot().is_open());
        assert_eq!(h.next_tick(), t0 + h.tick_period());
        assert_eq!(h.next_sample(), t0 + h.sample_period());
    }

    #[test]
    fn trace_events_flow_through_the_environment_hook() {
        let mut h = harness();
        let mut env = Recorder::default();
        h.boot(SimTime::from_millis(3), &mut env);
        // A lone switch boots, closes, numbers itself, installs a table
        // and reopens — all visible as typed events, exactly once each.
        let kinds: Vec<&str> = env.traced.iter().map(|(_, e)| e.kind()).collect();
        assert!(kinds.contains(&"boot"), "{kinds:?}");
        assert!(kinds.contains(&"reconfig-triggered"), "{kinds:?}");
        assert!(kinds.contains(&"network-opened"), "{kinds:?}");
        let before = env.traced.len();
        // The cursor advances: re-polling without new work repeats nothing.
        h.poll(
            SimTime::from_millis(3) + SimDuration::from_nanos(1),
            &mut env,
        );
        assert_eq!(env.traced.len(), before);
    }

    #[test]
    fn poll_fires_cadences_when_due() {
        let mut h = harness();
        let mut env = Recorder::default();
        h.boot(SimTime::ZERO, &mut env);
        assert!(!h.poll(SimTime::from_nanos(1), &mut env), "nothing due yet");
        let t = h.next_tick();
        assert!(h.poll(t, &mut env), "tick due");
        assert_eq!(h.next_tick(), t + h.tick_period());
        let s = h.next_sample();
        assert!(h.poll(s, &mut env), "sample due");
        // The sample loop pushed a dead/alive verdict for every port.
        assert_eq!(env.dead.len(), MAX_PORTS - 1);
    }

    #[test]
    fn deliver_routes_replies_through_environment() {
        let mut h = harness();
        let mut env = Recorder::default();
        h.boot(SimTime::ZERO, &mut env);
        env.sends.clear();
        let req = ControlMsg::ShortAddrRequest {
            host_uid: Uid::new(500),
        };
        h.deliver(SimTime::from_millis(1), 4, &req, &mut env);
        assert!(
            matches!(
                env.sends.as_slice(),
                [(4, ControlMsg::ShortAddrReply { .. })]
            ),
            "{:?}",
            env.sends
        );
    }
}

//! Integration: parallel trunk links (§3.6, §6.3 — "multiple links that
//! interconnect a pair of switches can function as a trunk group") through
//! the whole stack: protocol convergence, table synthesis with alternative
//! ports, and load splitting on the data plane.

use autonet::net::{NetParams, Network};
use autonet::sim::{SimDuration, SimTime};
use autonet::topo::{HostId, LinkId, SwitchId, Topology};
use autonet::wire::{LinkTiming, Uid};

/// Two switches joined by a 3-link trunk, two hosts on each side.
fn trunk_topology() -> Topology {
    let mut t = Topology::new();
    let a = t.add_switch(Uid::new(1)).unwrap();
    let b = t.add_switch(Uid::new(2)).unwrap();
    for _ in 0..3 {
        t.connect(a, b, LinkTiming::coax_100m()).unwrap();
    }
    for i in 0..2u64 {
        t.attach_host(Uid::new(100 + i), a, Some(b)).unwrap();
        t.attach_host(Uid::new(200 + i), b, Some(a)).unwrap();
    }
    t
}

#[test]
fn trunk_links_all_verified_and_programmed_as_alternatives() {
    let topo = trunk_topology();
    let mut net = Network::new(topo, NetParams::tuned(), 3);
    net.run_until_stable(SimTime::from_secs(60))
        .expect("converges");
    // All three parallel links are s.switch.good at both ends.
    assert_eq!(net.autopilot(SwitchId(0)).good_ports().len(), 3);
    assert_eq!(net.autopilot(SwitchId(1)).good_ports().len(), 3);
    // The forwarding table on switch A lists all three trunk ports as
    // alternatives toward switch B's addresses.
    let b_num = net.autopilot(SwitchId(1)).switch_number().unwrap();
    let table = net.forwarding_table(SwitchId(0));
    let entry = table.lookup(0, autonet::wire::ShortAddress::assigned(b_num, 0));
    assert!(!entry.broadcast);
    assert_eq!(entry.ports.len(), 3, "three-way trunk: {entry:?}");
}

#[test]
fn trunk_survives_member_failures_one_by_one() {
    let topo = trunk_topology();
    let mut net = Network::new(topo, NetParams::tuned(), 5);
    net.run_until_stable(SimTime::from_secs(60))
        .expect("converges");
    net.run_for(SimDuration::from_secs(3));
    let dst = net.topology().host(HostId(2)).uid; // A host on switch B.
    for (round, kill) in [0usize, 1].into_iter().enumerate() {
        let t = net.now() + SimDuration::from_millis(10);
        net.schedule_link_down(t, LinkId(kill));
        net.run_for(SimDuration::from_millis(100));
        net.run_until_stable(net.now() + SimDuration::from_secs(60))
            .expect("reconverges with a smaller trunk");
        let expected = 2 - round;
        assert_eq!(
            net.autopilot(SwitchId(0)).good_ports().len(),
            expected,
            "round {round}"
        );
        // Traffic still flows over the remaining members.
        let tag = 900 + round as u64;
        net.schedule_host_send(
            net.now() + SimDuration::from_millis(5),
            HostId(0),
            dst,
            256,
            tag,
        );
        net.run_for(SimDuration::from_secs(1));
        assert!(
            net.deliveries().iter().any(|d| d.tag == tag),
            "round {round}"
        );
    }
    // Killing the last member partitions the two switches; each side keeps
    // its own configuration.
    let t = net.now() + SimDuration::from_millis(10);
    net.schedule_link_down(t, LinkId(2));
    net.run_for(SimDuration::from_millis(100));
    net.run_until_stable(net.now() + SimDuration::from_secs(60))
        .expect("both singleton partitions settle");
    assert_eq!(
        net.autopilot(SwitchId(0)).global().unwrap().switches.len(),
        1
    );
    net.check_against_reference()
        .expect("reference matches partitions");
}

#[test]
fn trunk_splits_concurrent_transfers() {
    // Two simultaneous bulk transfers from A-side hosts to B-side hosts:
    // with a 3-link trunk they should overlap in time rather than
    // serialize behind a single link.
    let topo = trunk_topology();
    let mut net = Network::new(topo, NetParams::tuned(), 7);
    net.run_until_stable(SimTime::from_secs(60))
        .expect("converges");
    net.run_for(SimDuration::from_secs(3));
    let dst2 = net.topology().host(HostId(2)).uid;
    let dst3 = net.topology().host(HostId(3)).uid;
    let t0 = net.now() + SimDuration::from_millis(5);
    // 40 x 8 KiB from each sender, back to back.
    for i in 0..40u64 {
        net.schedule_host_send(t0, HostId(0), dst2, 8192, 1000 + i);
        net.schedule_host_send(t0, HostId(1), dst3, 8192, 2000 + i);
    }
    net.run_for(SimDuration::from_secs(2));
    let done = |range: std::ops::Range<u64>| -> SimTime {
        net.deliveries()
            .iter()
            .filter(|d| range.contains(&d.tag))
            .map(|d| d.time)
            .max()
            .expect("stream completed")
    };
    let finish_a = done(1000..1040);
    let finish_b = done(2000..2040);
    // Each stream is ~40 x 8 KiB = 320 KiB ≈ 26 ms at 100 Mbit/s. Over a
    // single link the two streams would take ~52 ms serialized; over the
    // trunk they run concurrently and finish together in ~26 ms.
    let span = finish_a.max(finish_b).saturating_since(t0);
    assert!(
        span < SimDuration::from_millis(40),
        "streams should share the trunk, took {span}"
    );
}

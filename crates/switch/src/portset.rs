//! 13-bit port vectors.

use std::fmt;

use autonet_wire::{PortIndex, MAX_PORTS};

/// A set of switch ports encoded as a 13-bit vector, bit `p` = port `p`
/// (port 0 is the control-processor port).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortSet(u16);

impl PortSet {
    /// Mask covering all valid port bits.
    pub const ALL_MASK: u16 = (1 << MAX_PORTS as u16) - 1;

    /// The empty set.
    pub const EMPTY: PortSet = PortSet(0);

    /// Creates a set from a raw bit vector.
    ///
    /// # Panics
    ///
    /// Panics if bits above port 12 are set.
    pub fn from_bits(bits: u16) -> Self {
        assert_eq!(
            bits & !Self::ALL_MASK,
            0,
            "port bits out of range: {bits:#06x}"
        );
        PortSet(bits)
    }

    /// Creates a singleton set.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn single(port: PortIndex) -> Self {
        assert!((port as usize) < MAX_PORTS, "port out of range: {port}");
        PortSet(1 << port)
    }

    /// Creates a set from an iterator of ports.
    pub fn from_ports(ports: impl IntoIterator<Item = PortIndex>) -> Self {
        let mut s = PortSet::EMPTY;
        for p in ports {
            s.insert(p);
        }
        s
    }

    /// The raw bit vector.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Adds a port.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn insert(&mut self, port: PortIndex) {
        assert!((port as usize) < MAX_PORTS, "port out of range: {port}");
        self.0 |= 1 << port;
    }

    /// Removes a port.
    pub fn remove(&mut self, port: PortIndex) {
        self.0 &= !(1 << port);
    }

    /// Membership test.
    pub fn contains(self, port: PortIndex) -> bool {
        (port as usize) < MAX_PORTS && self.0 & (1 << port) != 0
    }

    /// Returns `true` if no ports are in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of ports in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The lowest-numbered port in the set — the hardware's pick among
    /// alternative free ports (§6.3).
    pub fn lowest(self) -> Option<PortIndex> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as PortIndex)
        }
    }

    /// Set intersection.
    pub fn intersect(self, other: PortSet) -> PortSet {
        PortSet(self.0 & other.0)
    }

    /// Set union.
    pub fn union(self, other: PortSet) -> PortSet {
        PortSet(self.0 | other.0)
    }

    /// Set difference (`self` minus `other`).
    pub fn minus(self, other: PortSet) -> PortSet {
        PortSet(self.0 & !other.0)
    }

    /// Returns `true` if every port of `self` is in `other`.
    pub fn is_subset_of(self, other: PortSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over member ports in ascending order.
    pub fn iter(self) -> impl Iterator<Item = PortIndex> {
        (0..MAX_PORTS as PortIndex).filter(move |&p| self.contains(p))
    }
}

impl fmt::Debug for PortSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ports{{")?;
        let mut first = true;
        for p in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<PortIndex> for PortSet {
    fn from_iter<T: IntoIterator<Item = PortIndex>>(iter: T) -> Self {
        PortSet::from_ports(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = PortSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(12);
        assert!(s.contains(3));
        assert!(s.contains(12));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lowest_picks_smallest() {
        assert_eq!(PortSet::EMPTY.lowest(), None);
        assert_eq!(PortSet::from_ports([7, 2, 9]).lowest(), Some(2));
    }

    #[test]
    fn set_algebra() {
        let a = PortSet::from_ports([1, 2, 3]);
        let b = PortSet::from_ports([2, 3, 4]);
        assert_eq!(a.intersect(b), PortSet::from_ports([2, 3]));
        assert_eq!(a.union(b), PortSet::from_ports([1, 2, 3, 4]));
        assert_eq!(a.minus(b), PortSet::from_ports([1]));
        assert!(PortSet::from_ports([2]).is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn iter_ascending() {
        let s = PortSet::from_ports([12, 0, 5]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 12]);
    }

    #[test]
    #[should_panic(expected = "port out of range")]
    fn port_13_rejected() {
        PortSet::single(13);
    }

    #[test]
    #[should_panic(expected = "port bits out of range")]
    fn bits_above_13_rejected() {
        PortSet::from_bits(1 << 13);
    }
}

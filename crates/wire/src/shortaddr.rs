//! Short addresses and their reserved-value layout.
//!
//! Autonet packets are routed on a *short address* in the first two bytes of
//! the packet (companion paper §6.3). The prototype interpreted 11 bits; the
//! paper notes that widening to 16 bits is a straightforward design change,
//! and this reproduction models the 16-bit variant so the paper's published
//! hexadecimal layout can be used verbatim:
//!
//! | Short address | Packet destination |
//! |---------------|--------------------|
//! | `0000`        | from a host: the control processor of the local switch |
//! | `0001`–`000F` | from a switch: the one-hop neighbor on that port |
//! | `0010`–`FFEF` | a particular host or switch control processor |
//! | `FFF0`–`FFFB` | reserved; packets discarded |
//! | `FFFC`        | from a host: loopback from the local switch |
//! | `FFFD`        | every switch and every host |
//! | `FFFE`        | every switch |
//! | `FFFF`        | every host |
//!
//! An assignable address packs a 12-bit switch number (1..=4094) with a
//! 4-bit port number, so switch 1 port 0 is `0010` and switch 4094 port 15
//! is `FFEF` — exactly the paper's assignable range.

use std::fmt;

/// A port number on a switch (0 = the control-processor port).
pub type PortIndex = u8;

/// A switch number assigned by the root during reconfiguration.
pub type SwitchNumber = u16;

/// The number of ports on a switch, including port 0 (the control
/// processor). Twelve external ports plus the internal port.
pub const MAX_PORTS: usize = 13;

/// The largest assignable switch number (`0xFFE`, so that the top port of
/// the top switch lands on `0xFFEF`).
pub const MAX_SWITCH_NUMBER: SwitchNumber = 0xFFE;

/// A 16-bit Autonet short address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShortAddress(u16);

impl ShortAddress {
    /// From a host: addresses the control processor of the local switch.
    pub const TO_LOCAL_SWITCH: ShortAddress = ShortAddress(0x0000);

    /// First address of the assignable range.
    pub const FIRST_ASSIGNABLE: ShortAddress = ShortAddress(0x0010);

    /// Last address of the assignable range.
    pub const LAST_ASSIGNABLE: ShortAddress = ShortAddress(0xFFEF);

    /// From a host: the local switch reflects the packet back down the link.
    pub const LOOPBACK: ShortAddress = ShortAddress(0xFFFC);

    /// Broadcast to every switch and every host.
    pub const BROADCAST_ALL: ShortAddress = ShortAddress(0xFFFD);

    /// Broadcast to every switch control processor.
    pub const BROADCAST_SWITCHES: ShortAddress = ShortAddress(0xFFFE);

    /// Broadcast to every host.
    pub const BROADCAST_HOSTS: ShortAddress = ShortAddress(0xFFFF);

    /// Creates a short address from its raw 16-bit value.
    pub const fn from_raw(raw: u16) -> Self {
        ShortAddress(raw)
    }

    /// Returns the raw 16-bit value.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// Creates the one-hop address for external switch port `port`
    /// (`0001`–`000F`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= port <= 15`; port 0 is the control processor and
    /// has no one-hop address.
    pub fn one_hop(port: PortIndex) -> Self {
        assert!(
            (1..=15).contains(&port),
            "one-hop port out of range: {port}"
        );
        ShortAddress(port as u16)
    }

    /// Creates the assigned address of `port` on switch number `switch`.
    ///
    /// # Panics
    ///
    /// Panics if `switch` is 0 or exceeds [`MAX_SWITCH_NUMBER`], or if
    /// `port >= 16`.
    pub fn assigned(switch: SwitchNumber, port: PortIndex) -> Self {
        assert!(
            (1..=MAX_SWITCH_NUMBER).contains(&switch),
            "switch number out of range: {switch}"
        );
        assert!(port < 16, "port out of range: {port}");
        ShortAddress((switch << 4) | port as u16)
    }

    /// Returns `(switch number, port)` if this is an assignable address.
    pub fn split_assigned(self) -> Option<(SwitchNumber, PortIndex)> {
        if self.is_assigned() {
            Some((self.0 >> 4, (self.0 & 0xF) as PortIndex))
        } else {
            None
        }
    }

    /// Returns `true` if this address is in the assignable range.
    pub fn is_assigned(self) -> bool {
        self >= Self::FIRST_ASSIGNABLE && self <= Self::LAST_ASSIGNABLE
    }

    /// Returns `true` for the three broadcast addresses.
    pub fn is_broadcast(self) -> bool {
        matches!(
            self,
            Self::BROADCAST_ALL | Self::BROADCAST_SWITCHES | Self::BROADCAST_HOSTS
        )
    }

    /// Returns `true` for a one-hop switch-to-switch address, and the port.
    pub fn as_one_hop(self) -> Option<PortIndex> {
        if (0x0001..=0x000F).contains(&self.0) {
            Some(self.0 as PortIndex)
        } else {
            None
        }
    }

    /// Returns `true` for the reserved discard range `FFF0`–`FFFB`.
    pub fn is_reserved_discard(self) -> bool {
        (0xFFF0..=0xFFFB).contains(&self.0)
    }

    /// Encodes the address as 2 big-endian bytes (wire format).
    pub fn to_bytes(self) -> [u8; 2] {
        self.0.to_be_bytes()
    }

    /// Decodes an address from 2 big-endian bytes.
    pub fn from_bytes(bytes: [u8; 2]) -> Self {
        ShortAddress(u16::from_be_bytes(bytes))
    }
}

impl fmt::Debug for ShortAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sa({:04x})", self.0)
    }
}

impl fmt::Display for ShortAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::TO_LOCAL_SWITCH => f.write_str("local-switch"),
            Self::LOOPBACK => f.write_str("loopback"),
            Self::BROADCAST_ALL => f.write_str("bcast-all"),
            Self::BROADCAST_SWITCHES => f.write_str("bcast-switches"),
            Self::BROADCAST_HOSTS => f.write_str("bcast-hosts"),
            _ => match self.split_assigned() {
                Some((sw, port)) => write!(f, "sw{sw}.p{port}"),
                None => write!(f, "{:04x}", self.0),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigned_range_matches_paper_layout() {
        assert_eq!(ShortAddress::assigned(1, 0).as_u16(), 0x0010);
        assert_eq!(
            ShortAddress::assigned(MAX_SWITCH_NUMBER, 15).as_u16(),
            0xFFEF
        );
    }

    #[test]
    fn split_roundtrips() {
        for switch in [1u16, 2, 100, MAX_SWITCH_NUMBER] {
            for port in [0u8, 1, 12, 15] {
                let addr = ShortAddress::assigned(switch, port);
                assert_eq!(addr.split_assigned(), Some((switch, port)));
                assert!(addr.is_assigned());
            }
        }
    }

    #[test]
    fn special_values_are_not_assigned() {
        for addr in [
            ShortAddress::TO_LOCAL_SWITCH,
            ShortAddress::LOOPBACK,
            ShortAddress::BROADCAST_ALL,
            ShortAddress::BROADCAST_SWITCHES,
            ShortAddress::BROADCAST_HOSTS,
            ShortAddress::one_hop(5),
            ShortAddress::from_raw(0xFFF3),
        ] {
            assert!(!addr.is_assigned(), "{addr:?} must not be assignable");
            assert_eq!(addr.split_assigned(), None);
        }
    }

    #[test]
    fn broadcast_classification() {
        assert!(ShortAddress::BROADCAST_ALL.is_broadcast());
        assert!(ShortAddress::BROADCAST_SWITCHES.is_broadcast());
        assert!(ShortAddress::BROADCAST_HOSTS.is_broadcast());
        assert!(!ShortAddress::LOOPBACK.is_broadcast());
        assert!(!ShortAddress::assigned(3, 2).is_broadcast());
    }

    #[test]
    fn one_hop_addresses() {
        assert_eq!(ShortAddress::one_hop(1).as_u16(), 0x0001);
        assert_eq!(ShortAddress::one_hop(15).as_u16(), 0x000F);
        assert_eq!(ShortAddress::one_hop(4).as_one_hop(), Some(4));
        assert_eq!(ShortAddress::TO_LOCAL_SWITCH.as_one_hop(), None);
        assert_eq!(ShortAddress::FIRST_ASSIGNABLE.as_one_hop(), None);
    }

    #[test]
    fn reserved_discard_range() {
        assert!(ShortAddress::from_raw(0xFFF0).is_reserved_discard());
        assert!(ShortAddress::from_raw(0xFFFB).is_reserved_discard());
        assert!(!ShortAddress::from_raw(0xFFEF).is_reserved_discard());
        assert!(!ShortAddress::LOOPBACK.is_reserved_discard());
    }

    #[test]
    fn byte_roundtrip() {
        let addr = ShortAddress::assigned(0x123, 7);
        assert_eq!(ShortAddress::from_bytes(addr.to_bytes()), addr);
    }

    #[test]
    #[should_panic(expected = "switch number out of range")]
    fn switch_zero_is_unassignable() {
        let _ = ShortAddress::assigned(0, 0);
    }

    #[test]
    #[should_panic(expected = "one-hop port out of range")]
    fn one_hop_port_zero_rejected() {
        let _ = ShortAddress::one_hop(0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ShortAddress::assigned(7, 3).to_string(), "sw7.p3");
        assert_eq!(ShortAddress::BROADCAST_HOSTS.to_string(), "bcast-hosts");
        assert_eq!(ShortAddress::one_hop(2).to_string(), "0002");
    }
}

//! Up\*/down\* route computation and forwarding-table synthesis.
//!
//! Step 5 of reconfiguration (companion paper §6.6.4): from the global
//! topology and spanning tree, each switch computes its own forwarding
//! table. Every link is assigned a direction — the "up" end is the end
//! closer to the root in the spanning tree, ties broken by the smaller
//! UID — and a legal route traverses zero or more links up followed by
//! zero or more links down. Legality is enforced *locally*: forwarding
//! entries are indexed by the receiving port, and entries that would carry
//! a packet from a "down" arrival onto an "up" link are left as discard.
//!
//! Routes are minimal-hop among legal routes, with all tied next hops
//! programmed as alternative ports (dynamic multipath, trunk grouping).
//! Broadcast addresses route up the tree to the root and flood down.
//!
//! [`RouteComputer`] also implements the unrestricted-shortest-path
//! baseline and the channel-dependency-graph analysis used to demonstrate
//! that up\*/down\* is deadlock-free where the baseline is not.

use std::collections::BTreeMap;

use autonet_switch::{ForwardingEntry, ForwardingTable, PortSet};
use autonet_topo::deadlock::find_cycle;
use autonet_topo::NetView;
use autonet_wire::{PortIndex, ShortAddress, SwitchNumber, Uid, MAX_PORTS};

use crate::epoch::Epoch;
use crate::topology::{GlobalTopology, LinkInfo, SwitchInfo};

/// Which routing discipline to synthesize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteKind {
    /// The paper's deadlock-free discipline.
    UpDown,
    /// Unrestricted minimal routing (the deadlock-prone baseline).
    Unrestricted,
}

/// A deduplicated physical link in the global topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct GLink {
    pub(crate) a: usize,
    pub(crate) a_port: PortIndex,
    pub(crate) b: usize,
    pub(crate) b_port: PortIndex,
}

/// Aggregate statistics over a route computation, for the experiments.
#[derive(Clone, Debug, Default)]
pub struct RoutingStats {
    /// Sum over reachable ordered pairs of minimal legal hop counts.
    pub legal_hops_total: u64,
    /// Sum over the same pairs of unrestricted shortest-path hop counts.
    pub shortest_hops_total: u64,
    /// Number of ordered pairs measured.
    pub pairs: u64,
    /// For every link, how many ordered pairs have it on a minimal legal
    /// route.
    pub link_loads: Vec<u64>,
}

impl RoutingStats {
    /// Mean path-length inflation of up\*/down\* over shortest paths.
    pub fn inflation(&self) -> f64 {
        if self.shortest_hops_total == 0 {
            1.0
        } else {
            self.legal_hops_total as f64 / self.shortest_hops_total as f64
        }
    }
}

/// Analyzer for one global topology: link directions, legal distances,
/// baseline distances, deadlock analysis and table synthesis.
pub struct RouteComputer {
    uids: Vec<Uid>,
    index: BTreeMap<Uid, usize>,
    levels: Vec<u32>,
    pub(crate) links: Vec<GLink>,
    /// Per node: outgoing (link index, far node) pairs.
    adj: Vec<Vec<(usize, usize)>>,
}

/// Phase of a packet under the up\*/down\* rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Has not yet traversed a link downward; may still go up.
    Up,
    /// Has gone down; may only continue down.
    Down,
}

impl RouteComputer {
    /// Builds the analyzer from a global topology.
    ///
    /// Loopback links are omitted; a link is included only when both ends
    /// reported it, so an asymmetric view cannot route into a link the far
    /// end will not use.
    ///
    /// # Panics
    ///
    /// Panics if the topology's parent pointers are broken (no consistent
    /// level assignment) — a malformed input that a correct reconfiguration
    /// never produces.
    pub fn new(global: &GlobalTopology) -> Self {
        let uids: Vec<Uid> = global.switches.iter().map(|s| s.uid).collect();
        let index: BTreeMap<Uid, usize> = uids.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let level_map = global.levels().expect("well-formed spanning tree");
        let levels: Vec<u32> = uids.iter().map(|u| level_map[u]).collect();
        // Deduplicate links: keep one GLink per (end, end) pair reported by
        // both sides.
        let mut links: Vec<GLink> = Vec::new();
        let mut seen: std::collections::BTreeSet<(usize, PortIndex, usize, PortIndex)> =
            std::collections::BTreeSet::new();
        for (ai, s) in global.switches.iter().enumerate() {
            for l in &s.links {
                let Some(&bi) = index.get(&l.neighbor) else {
                    continue;
                };
                if bi == ai {
                    continue; // Looped-back links are omitted (§6.6.4).
                }
                // Canonical orientation: the smaller (node, port) end first.
                let (a, a_port, b, b_port) = if (ai, l.local_port) <= (bi, l.neighbor_port) {
                    (ai, l.local_port, bi, l.neighbor_port)
                } else {
                    (bi, l.neighbor_port, ai, l.local_port)
                };
                // Require the far end to have reported the same link.
                let far = &global.switches[b];
                let confirmed = far.links.iter().any(|fl| {
                    fl.local_port == b_port
                        && index.get(&fl.neighbor) == Some(&a)
                        && fl.neighbor_port == a_port
                });
                if !confirmed {
                    continue;
                }
                let glink = GLink {
                    a,
                    a_port,
                    b,
                    b_port,
                };
                if seen.insert((a, a_port, b, b_port)) {
                    links.push(glink);
                }
            }
        }
        let mut adj = vec![Vec::new(); uids.len()];
        for (li, l) in links.iter().enumerate() {
            adj[l.a].push((li, l.b));
            adj[l.b].push((li, l.a));
        }
        RouteComputer {
            uids,
            index,
            levels,
            links,
            adj,
        }
    }

    /// Number of usable (deduplicated, non-loopback) links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.uids.len()
    }

    pub(crate) fn node(&self, uid: Uid) -> Option<usize> {
        self.index.get(&uid).copied()
    }

    pub(crate) fn node_uid(&self, node: usize) -> Uid {
        self.uids[node]
    }

    /// Returns `true` if traversing `link` arriving at `to` moves toward
    /// the "up" end.
    pub(crate) fn is_up_traversal(&self, link: usize, to: usize) -> bool {
        let l = &self.links[link];
        let (a, b) = (l.a, l.b);
        let up_end = match self.levels[a].cmp(&self.levels[b]) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => {
                if self.uids[a] < self.uids[b] {
                    a
                } else {
                    b
                }
            }
        };
        to == up_end
    }

    /// State index for the (node, phase) BFS.
    fn state(&self, node: usize, phase: Phase) -> usize {
        node * 2
            + match phase {
                Phase::Up => 0,
                Phase::Down => 1,
            }
    }

    /// Minimal legal hop counts from every (node, phase) state to `dst`.
    /// `u32::MAX` marks unreachable states.
    fn legal_dists_to(&self, dst: usize) -> Vec<u32> {
        let n = self.uids.len();
        let mut dist = vec![u32::MAX; n * 2];
        let mut queue = std::collections::VecDeque::new();
        for phase in [Phase::Up, Phase::Down] {
            dist[self.state(dst, phase)] = 0;
            queue.push_back((dst, phase));
        }
        // Reverse BFS: predecessors of (v, Down) are (u, *) where u→v is a
        // down traversal; predecessors of (v, Up) are (u, Up) where u→v is
        // up.
        while let Some((v, phase)) = queue.pop_front() {
            let d = dist[self.state(v, phase)];
            for &(li, u) in &self.adj[v] {
                let up = self.is_up_traversal(li, v);
                let preds: &[Phase] = match (up, phase) {
                    // u→v up keeps phase Up; only reachable into (v, Up).
                    (true, Phase::Up) => &[Phase::Up],
                    (true, Phase::Down) => &[],
                    // u→v down lands in (v, Down) from either phase at u.
                    (false, Phase::Down) => &[Phase::Up, Phase::Down],
                    (false, Phase::Up) => &[],
                };
                for &p in preds {
                    let s = self.state(u, p);
                    if dist[s] == u32::MAX {
                        dist[s] = d + 1;
                        queue.push_back((u, p));
                    }
                }
            }
        }
        dist
    }

    /// Unrestricted BFS hop counts from every node to `dst`.
    fn shortest_dists_to(&self, dst: usize) -> Vec<u32> {
        let n = self.uids.len();
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[dst] = 0;
        queue.push_back(dst);
        while let Some(v) = queue.pop_front() {
            for &(_, u) in &self.adj[v] {
                if dist[u] == u32::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Minimal legal hop count from `src` (fresh packet) to `dst`.
    pub fn legal_dist(&self, src: Uid, dst: Uid) -> Option<u32> {
        let (s, d) = (self.node(src)?, self.node(dst)?);
        let dist = self.legal_dists_to(d);
        let v = dist[self.state(s, Phase::Up)];
        (v != u32::MAX).then_some(v)
    }

    /// Unrestricted shortest hop count from `src` to `dst`.
    pub fn unrestricted_dist(&self, src: Uid, dst: Uid) -> Option<u32> {
        let (s, d) = (self.node(src)?, self.node(dst)?);
        let dist = self.shortest_dists_to(d);
        let v = dist[s];
        (v != u32::MAX).then_some(v)
    }

    /// All-pairs statistics: path inflation and per-link route load.
    pub fn stats(&self) -> RoutingStats {
        let n = self.uids.len();
        let mut out = RoutingStats {
            link_loads: vec![0; self.links.len()],
            ..RoutingStats::default()
        };
        for d in 0..n {
            let legal = self.legal_dists_to(d);
            let short = self.shortest_dists_to(d);
            for s in 0..n {
                if s == d {
                    continue;
                }
                let lv = legal[self.state(s, Phase::Up)];
                let sv = short[s];
                if lv == u32::MAX || sv == u32::MAX {
                    continue;
                }
                out.pairs += 1;
                out.legal_hops_total += lv as u64;
                out.shortest_hops_total += sv as u64;
            }
            // Link load: a traversal u→v on link li lies on a minimal legal
            // route from s to d iff dist_from_start(u,p) + 1 + legal(v,p')
            // equals the total. Count once per (s, d) pair per link.
            for s in 0..n {
                if s == d || legal[self.state(s, Phase::Up)] == u32::MAX {
                    continue;
                }
                let total = legal[self.state(s, Phase::Up)];
                let from_src = self.legal_dists_from(s);
                for (li, _) in self.links.iter().enumerate() {
                    if self.link_on_min_route(li, &from_src, &legal, total) {
                        out.link_loads[li] += 1;
                    }
                }
            }
        }
        out
    }

    /// Minimal legal hop counts from the fresh state at `src` to every
    /// (node, phase) state, by forward BFS.
    fn legal_dists_from(&self, src: usize) -> Vec<u32> {
        self.legal_dists_from_state(src, Phase::Up)
    }

    /// Minimal legal hop counts from the state `(src, start)` to every
    /// (node, phase) state, by forward BFS. The workhorse of table
    /// synthesis: a switch needs one field per in-phase plus one per
    /// outgoing link's landing state — O(degree) BFS per table — where a
    /// reverse field per destination would cost O(switches) BFS per table
    /// and make 1024-switch reconfigurations quadratic. The fleet-wide
    /// dedup goes further still: every one of those fields is the
    /// from-field of *some* (node, phase) state, so a shared
    /// [`RouteCache`](crate::route_cache::RouteCache) computes the 2·V
    /// fields once and serves every switch slices of them.
    pub(crate) fn legal_dists_from_state(&self, src: usize, start: Phase) -> Vec<u32> {
        let n = self.uids.len();
        let mut dist = vec![u32::MAX; n * 2];
        let mut queue = std::collections::VecDeque::new();
        dist[self.state(src, start)] = 0;
        queue.push_back((src, start));
        while let Some((u, phase)) = queue.pop_front() {
            let d = dist[self.state(u, phase)];
            for &(li, v) in &self.adj[u] {
                let up = self.is_up_traversal(li, v);
                let next = match (phase, up) {
                    (Phase::Up, true) => Some(Phase::Up),
                    (_, false) => Some(Phase::Down),
                    (Phase::Down, true) => None,
                };
                if let Some(p) = next {
                    let s = self.state(v, p);
                    if dist[s] == u32::MAX {
                        dist[s] = d + 1;
                        queue.push_back((v, p));
                    }
                }
            }
        }
        dist
    }

    /// Distance from a forward-BFS field to node `d`, minimized over the
    /// phase the packet arrives in (delivery happens in either phase).
    fn dist_to_node(&self, field: &[u32], d: usize) -> u32 {
        field[self.state(d, Phase::Up)].min(field[self.state(d, Phase::Down)])
    }

    /// Whether some minimal legal route of length `total` crosses `link`.
    fn link_on_min_route(&self, li: usize, from_src: &[u32], to_dst: &[u32], total: u32) -> bool {
        let l = &self.links[li];
        for (u, v) in [(l.a, l.b), (l.b, l.a)] {
            let up = self.is_up_traversal(li, v);
            for phase in [Phase::Up, Phase::Down] {
                let du = from_src[self.state(u, phase)];
                if du == u32::MAX {
                    continue;
                }
                let next = match (phase, up) {
                    (Phase::Up, true) => Phase::Up,
                    (_, false) => Phase::Down,
                    (Phase::Down, true) => continue,
                };
                let dv = to_dst[self.state(v, next)];
                if dv != u32::MAX && du + 1 + dv == total {
                    return true;
                }
            }
        }
        false
    }

    /// Builds the channel-dependency edges induced by the forwarding
    /// discipline and reports whether they contain a cycle — the formal
    /// deadlock-possibility criterion. `UpDown` must always return `false`;
    /// `Unrestricted` returns `true` on any topology with a cycle of
    /// alternating shortest paths (e.g. a ring or torus).
    pub fn has_dependency_cycle(&self, kind: RouteKind) -> bool {
        let nch = self.links.len() * 2;
        // Channel id: 2*link + (0 if delivering into `a`, 1 into `b`).
        let ch = |li: usize, to: usize| -> usize {
            let l = &self.links[li];
            li * 2 + usize::from(to == l.b)
        };
        let mut edges: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        for d in 0..self.uids.len() {
            match kind {
                RouteKind::UpDown => {
                    let to_dst = self.legal_dists_to(d);
                    // For every in-channel (n→u) and phase it induces, add
                    // edges to the out-channels the table would use.
                    for (li_in, l) in self.links.iter().enumerate() {
                        for (_n, u) in [(l.a, l.b), (l.b, l.a)] {
                            let phase = if self.is_up_traversal(li_in, u) {
                                Phase::Up
                            } else {
                                Phase::Down
                            };
                            if u == d {
                                continue;
                            }
                            for &(li_out, v) in &self.adj[u] {
                                let up = self.is_up_traversal(li_out, v);
                                let next = match (phase, up) {
                                    (Phase::Up, true) => Phase::Up,
                                    (_, false) => Phase::Down,
                                    (Phase::Down, true) => continue,
                                };
                                let dv = to_dst[self.state(v, next)];
                                let du = to_dst[self.state(u, phase)];
                                if du != u32::MAX && dv != u32::MAX && dv + 1 == du {
                                    edges.insert((ch(li_in, u), ch(li_out, v)));
                                }
                            }
                        }
                    }
                }
                RouteKind::Unrestricted => {
                    let to_dst = self.shortest_dists_to(d);
                    for (li_in, l) in self.links.iter().enumerate() {
                        for (n, u) in [(l.a, l.b), (l.b, l.a)] {
                            if u == d || to_dst[u] == u32::MAX {
                                continue;
                            }
                            // Only in-channels that actually carry packets
                            // to d: the upstream hop was itself a shortest
                            // step toward d.
                            if n == d || to_dst[n] != to_dst[u] + 1 {
                                continue;
                            }
                            for &(li_out, v) in &self.adj[u] {
                                if to_dst[v] != u32::MAX && to_dst[v] + 1 == to_dst[u] {
                                    edges.insert((ch(li_in, u), ch(li_out, v)));
                                }
                            }
                        }
                    }
                }
            }
        }
        let edge_list: Vec<(usize, usize)> = edges.into_iter().collect();
        find_cycle(nch, &edge_list).is_some()
    }
}

/// Programs the constant one-hop entries that survive table clears:
/// `0001`–`000F` from the control processor go out the numbered port; from
/// any other port they go to the control processor (§6.3).
pub fn program_one_hop(table: &mut ForwardingTable) {
    for k in 1..MAX_PORTS as PortIndex {
        table.set(
            0,
            ShortAddress::one_hop(k),
            ForwardingEntry::alternatives(PortSet::single(k)),
        );
        for p in 1..MAX_PORTS as PortIndex {
            table.set(
                p,
                ShortAddress::one_hop(k),
                ForwardingEntry::alternatives(PortSet::single(0)),
            );
        }
    }
}

/// This switch's trunk attachment points: `(local port, link index, far
/// node)` pairs in deterministic [`RouteComputer`] link order. Shared by
/// the from-scratch path and the route cache so the distance fields they
/// pass to [`synthesize_table`] align positionally.
pub(crate) fn link_ports_of(rc: &RouteComputer, me: usize) -> Vec<(PortIndex, usize, usize)> {
    let mut link_ports: Vec<(PortIndex, usize, usize)> = Vec::new();
    for (li, l) in rc.links.iter().enumerate() {
        if l.a == me {
            link_ports.push((l.a_port, li, l.b));
        }
        if l.b == me {
            link_ports.push((l.b_port, li, l.a));
        }
    }
    link_ports
}

/// Computes the full forwarding table for switch `my_uid` from the global
/// topology, with `live_host_ports` being the ports currently classified
/// `s.host` (which may differ from the epoch snapshot — host arrivals and
/// departures patch tables locally without reconfiguration).
///
/// Returns `None` if `my_uid` is not part of the topology.
pub fn compute_forwarding_table(
    global: &GlobalTopology,
    my_uid: Uid,
    live_host_ports: &[PortIndex],
    kind: RouteKind,
) -> Option<ForwardingTable> {
    // A malformed topology (possible with the timeout-termination baseline,
    // which can ship partial trees) cannot be routed; the caller keeps the
    // cleared table.
    global.levels()?;
    let rc = RouteComputer::new(global);
    let me = rc.node(my_uid)?;
    let link_ports = link_ports_of(&rc, me);

    // Forward distance fields, computed once per table: from my own two
    // in-phases, and from the landing state of each of my links (a hop out
    // of an `up` link lands in `(far, Up)`, a hop down in `(far, Down)`).
    // Next hops for *every* destination fall out of the minimality
    // equality `dist(far) + 1 == dist(me)` over these O(degree) fields —
    // identical tables to a reverse BFS per destination at a fraction of
    // the cost (legal distances are phase-path lengths either way).
    let (from_me_up, from_me_down, far_fields) = match kind {
        RouteKind::UpDown => {
            let fields: Vec<(PortIndex, bool, Vec<u32>)> = link_ports
                .iter()
                .map(|&(port, li, far)| {
                    let up = rc.is_up_traversal(li, far);
                    let landing = if up { Phase::Up } else { Phase::Down };
                    (port, up, rc.legal_dists_from_state(far, landing))
                })
                .collect();
            (
                rc.legal_dists_from_state(me, Phase::Up),
                rc.legal_dists_from_state(me, Phase::Down),
                fields,
            )
        }
        RouteKind::Unrestricted => {
            // Unrestricted distances are symmetric (undirected graph), so
            // `shortest_dists_to` doubles as a from-field.
            let fields: Vec<(PortIndex, bool, Vec<u32>)> = link_ports
                .iter()
                .map(|&(port, _li, far)| (port, false, rc.shortest_dists_to(far)))
                .collect();
            let from_me = rc.shortest_dists_to(me);
            (from_me.clone(), from_me, fields)
        }
    };
    let field_refs: Vec<(PortIndex, bool, &[u32])> = far_fields
        .iter()
        .map(|(port, up, field)| (*port, *up, field.as_slice()))
        .collect();
    synthesize_table(
        &rc,
        global,
        my_uid,
        live_host_ports,
        kind,
        &from_me_up,
        &from_me_down,
        &field_refs,
    )
}

/// Synthesizes switch `my_uid`'s forwarding table from precomputed
/// distance fields: the switch's own two in-phase fields plus, for each
/// trunk link in [`link_ports_of`] order, `(local port, is-up, landing
/// field of the far end)`. This is the single table-construction body —
/// [`compute_forwarding_table`] feeds it per-switch BFS results, the
/// shared [`RouteCache`](crate::route_cache::RouteCache) feeds it slices
/// of the fleet-wide field pool — so cached and from-scratch tables are
/// identical by construction, not by test alone.
#[allow(clippy::too_many_arguments)] // the full synthesis input, spelled out
pub(crate) fn synthesize_table(
    rc: &RouteComputer,
    global: &GlobalTopology,
    my_uid: Uid,
    live_host_ports: &[PortIndex],
    kind: RouteKind,
    from_me_up: &[u32],
    from_me_down: &[u32],
    far_fields: &[(PortIndex, bool, &[u32])],
) -> Option<ForwardingTable> {
    let me = rc.node(my_uid)?;
    let my_info = global.switch(my_uid)?;
    global.number_of(my_uid)?;
    let link_ports = link_ports_of(rc, me);
    let mut table = ForwardingTable::new();
    program_one_hop(&mut table);

    // In-ports and the phase a packet arriving there is in.
    let mut in_ports: Vec<(PortIndex, Phase)> = vec![(0, Phase::Up)];
    for &p in live_host_ports {
        in_ports.push((p, Phase::Up));
    }
    for &(port, li, _far) in &link_ports {
        // A packet arriving here traversed far→me; that traversal is up if
        // I am the up end.
        let phase = match kind {
            RouteKind::UpDown => {
                if rc.is_up_traversal(li, me) {
                    Phase::Up
                } else {
                    Phase::Down
                }
            }
            RouteKind::Unrestricted => Phase::Up,
        };
        in_ports.push((port, phase));
    }

    // --- Unicast entries per destination switch --------------------------
    for (d, dinfo) in global.switches.iter().enumerate() {
        let d_num = global.number_of(dinfo.uid)?;
        if d == me {
            // Local delivery: the control processor and every live host
            // port, from every in-port.
            let mut local_ports: Vec<PortIndex> = vec![0];
            local_ports.extend_from_slice(live_host_ports);
            for &q in &local_ports {
                let addr = ShortAddress::assigned(d_num, q);
                for &(in_p, _) in &in_ports {
                    table.set(
                        in_p,
                        addr,
                        ForwardingEntry::alternatives(PortSet::single(q)),
                    );
                }
            }
            continue;
        }
        // Remote switch: any port address of that switch routes the same
        // way; program a per-switch-number prefix entry per in-port.
        let next_hops = |phase: Phase| -> PortSet {
            let mut set = PortSet::EMPTY;
            match kind {
                RouteKind::UpDown => {
                    let from_me = match phase {
                        Phase::Up => &from_me_up,
                        Phase::Down => &from_me_down,
                    };
                    let here = rc.dist_to_node(from_me, d);
                    if here == u32::MAX {
                        return set;
                    }
                    for (port, up, field) in far_fields {
                        if phase == Phase::Down && *up {
                            continue; // Down-phase packets cannot go up.
                        }
                        let dv = rc.dist_to_node(field, d);
                        if dv != u32::MAX && dv + 1 == here {
                            set.insert(*port);
                        }
                    }
                }
                RouteKind::Unrestricted => {
                    let here = from_me_up[d];
                    if here == u32::MAX {
                        return set;
                    }
                    for (port, _up, field) in far_fields {
                        if field[d] != u32::MAX && field[d] + 1 == here {
                            set.insert(*port);
                        }
                    }
                }
            }
            set
        };
        let up_set = next_hops(Phase::Up);
        let down_set = next_hops(Phase::Down);
        for &(in_p, phase) in &in_ports {
            let set = match phase {
                Phase::Up => up_set,
                Phase::Down => down_set,
            };
            if !set.is_empty() {
                table.set_switch_prefix(in_p, d_num, ForwardingEntry::alternatives(set));
            }
            // Empty set stays discard — the local enforcement of the rule.
        }
    }

    // --- Special addresses -----------------------------------------------
    // Loopback: reflected back down the receiving host link.
    for &p in live_host_ports {
        table.set(
            p,
            ShortAddress::LOOPBACK,
            ForwardingEntry::alternatives(PortSet::single(p)),
        );
        // Host-to-local-switch service address.
        table.set(
            p,
            ShortAddress::TO_LOCAL_SWITCH,
            ForwardingEntry::alternatives(PortSet::single(0)),
        );
    }

    // --- Broadcast -------------------------------------------------------
    // My tree children and the port leading to each.
    let mut child_ports = PortSet::EMPTY;
    for child in global.children_of(my_uid) {
        // Find the link whose child-side port is the child's parent port.
        for &(port, li, far) in &link_ports {
            let l = &rc.links[li];
            let far_uid = rc.uids[far];
            if far_uid != child.uid {
                continue;
            }
            let far_port = if l.a == far { l.a_port } else { l.b_port };
            if far_port == child.parent_port {
                child_ports.insert(port);
            }
        }
    }
    let i_am_root = global.root == my_uid;
    let parent_port = my_info.parent_port;
    for addr in [
        ShortAddress::BROADCAST_ALL,
        ShortAddress::BROADCAST_SWITCHES,
        ShortAddress::BROADCAST_HOSTS,
    ] {
        let mut local = PortSet::EMPTY;
        if addr != ShortAddress::BROADCAST_HOSTS {
            local.insert(0);
        }
        if addr != ShortAddress::BROADCAST_SWITCHES {
            for &p in live_host_ports {
                local.insert(p);
            }
        }
        let flood = child_ports.union(local);
        for &(in_p, _) in &in_ports {
            let entry = if i_am_root {
                ForwardingEntry::simultaneous(flood)
            } else if in_p == parent_port {
                // Down phase: flood to children and local destinations.
                ForwardingEntry::simultaneous(flood)
            } else {
                // Up phase: forward toward the root.
                ForwardingEntry::alternatives(PortSet::single(parent_port))
            };
            if !entry.ports.is_empty() {
                table.set(in_p, addr, entry);
            }
        }
    }
    Some(table)
}

/// Derives the [`GlobalTopology`] the protocol would converge to on a
/// given live view — the reference result for integration tests and a
/// shortcut for experiments that only need routing, not the protocol run.
///
/// The spanning tree matches the distributed algorithm's fixpoint: the
/// root is the smallest UID, levels are BFS hop counts from it, and each
/// switch's parent is the neighbor at the previous level with the smallest
/// UID (lowest connecting port among parallel links). Unreachable switches
/// are omitted (they would form their own partition's configuration).
pub fn global_from_view(
    view: &NetView<'_>,
    epoch: Epoch,
    proposals: &BTreeMap<Uid, SwitchNumber>,
) -> Option<GlobalTopology> {
    let topo = view.topology();
    let root = view.up_switches().map(|s| topo.switch(s).uid).min()?;
    let root_id = topo.switch_by_uid(root).expect("root exists");
    let dist = autonet_topo::bfs_distances(view, root_id);
    let mut switches: Vec<SwitchInfo> = Vec::new();
    for s in view.up_switches() {
        let Some(my_level) = dist[s.0] else {
            continue; // Different partition.
        };
        let uid = topo.switch(s).uid;
        // Parent: neighbor at level-1 with smallest UID; among parallel
        // links to it, the lowest local port.
        let mut parent: Option<(Uid, PortIndex)> = None;
        if my_level > 0 {
            for (port, _lid, far) in view.neighbors(s) {
                if dist[far.switch.0] != Some(my_level - 1) {
                    continue;
                }
                let fuid = topo.switch(far.switch).uid;
                let better = match parent {
                    None => true,
                    Some((puid, pport)) => (fuid, port) < (puid, pport),
                };
                if better {
                    parent = Some((fuid, port));
                }
            }
        }
        let (parent, parent_port) = parent.unwrap_or((uid, 0));
        let links: Vec<LinkInfo> = view
            .neighbors(s)
            .map(|(port, _lid, far)| LinkInfo {
                local_port: port,
                neighbor: topo.switch(far.switch).uid,
                neighbor_port: far.port,
            })
            .collect();
        let host_ports: Vec<PortIndex> = topo.hosts_at(s).map(|(p, _, _)| p).collect();
        switches.push(SwitchInfo {
            uid,
            proposed_number: proposals.get(&uid).copied().unwrap_or(1),
            parent,
            parent_port,
            links,
            host_ports,
        });
    }
    let numbers = crate::addressing::assign_switch_numbers(&switches);
    Some(GlobalTopology {
        epoch,
        root,
        switches: std::sync::Arc::new(switches),
        numbers: std::sync::Arc::new(numbers),
    })
}

/// Convenience for tests: a global topology from a view with default
/// proposals.
pub fn global_from_view_simple(view: &NetView<'_>) -> Option<GlobalTopology> {
    global_from_view(view, Epoch(1), &BTreeMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autonet_topo::gen;

    fn rc_for(topo: &autonet_topo::Topology) -> (GlobalTopology, RouteComputer) {
        let g = global_from_view_simple(&topo.view_all()).expect("non-empty");
        let rc = RouteComputer::new(&g);
        (g, rc)
    }

    #[test]
    fn updown_reaches_everything_on_many_topologies() {
        for topo in [
            gen::line(6, 3),
            gen::ring(8, 4),
            gen::torus(4, 4, 5),
            gen::tree(3, 2, 6),
            gen::random_connected(20, 8, 7),
        ] {
            let (g, rc) = rc_for(&topo);
            for a in g.switches.iter() {
                for b in g.switches.iter() {
                    assert!(
                        rc.legal_dist(a.uid, b.uid).is_some(),
                        "{:?} cannot reach {:?}",
                        a.uid,
                        b.uid
                    );
                }
            }
        }
    }

    #[test]
    fn legal_routes_at_least_as_long_as_shortest() {
        let topo = gen::torus(4, 4, 9);
        let (g, rc) = rc_for(&topo);
        for a in g.switches.iter() {
            for b in g.switches.iter() {
                let legal = rc.legal_dist(a.uid, b.uid).unwrap();
                let short = rc.unrestricted_dist(a.uid, b.uid).unwrap();
                assert!(legal >= short);
            }
        }
    }

    #[test]
    fn updown_is_deadlock_free_where_unrestricted_is_not() {
        let topo = gen::torus(4, 4, 11);
        let (_, rc) = rc_for(&topo);
        assert!(!rc.has_dependency_cycle(RouteKind::UpDown));
        assert!(rc.has_dependency_cycle(RouteKind::Unrestricted));
    }

    #[test]
    fn updown_deadlock_free_on_random_topologies() {
        for seed in 1..15 {
            let topo = gen::random_connected(16, 10, seed);
            let (_, rc) = rc_for(&topo);
            assert!(
                !rc.has_dependency_cycle(RouteKind::UpDown),
                "seed {seed} produced a cycle"
            );
        }
    }

    #[test]
    fn tree_topology_has_no_cycles_even_unrestricted() {
        let topo = gen::tree(2, 3, 13);
        let (_, rc) = rc_for(&topo);
        assert!(!rc.has_dependency_cycle(RouteKind::UpDown));
        assert!(!rc.has_dependency_cycle(RouteKind::Unrestricted));
    }

    #[test]
    fn all_links_usable() {
        // §6.6.4: the up*/down* rule excludes only looped-back links; every
        // usable link carries traffic on some minimal route.
        let topo = gen::torus(4, 4, 17);
        let (_, rc) = rc_for(&topo);
        let stats = rc.stats();
        assert_eq!(stats.link_loads.len(), rc.num_links());
        for (li, &load) in stats.link_loads.iter().enumerate() {
            assert!(load > 0, "link {li} carries no minimal route");
        }
    }

    #[test]
    fn inflation_is_reasonable_on_torus() {
        let topo = gen::torus(4, 4, 19);
        let (_, rc) = rc_for(&topo);
        let stats = rc.stats();
        let infl = stats.inflation();
        assert!(infl >= 1.0);
        assert!(
            infl < 2.0,
            "inflation {infl} implausibly high for a 4x4 torus"
        );
    }

    #[test]
    fn global_from_view_tree_is_bfs() {
        let topo = gen::line(4, 0); // UIDs 1..4 in order.
        let g = global_from_view_simple(&topo.view_all()).unwrap();
        assert_eq!(g.root, Uid::new(1));
        let levels = g.levels().unwrap();
        assert_eq!(levels[&Uid::new(4)], 3);
        // Switch 3's parent is switch 2.
        assert_eq!(g.switch(Uid::new(3)).unwrap().parent, Uid::new(2));
    }

    #[test]
    fn forwarding_table_local_delivery_and_discard() {
        let mut topo = gen::line(3, 0);
        gen::add_dual_homed_hosts(&mut topo, 1, 5);
        let g = global_from_view_simple(&topo.view_all()).unwrap();
        let my_uid = Uid::new(2); // Middle switch.
        let info = g.switch(my_uid).unwrap().clone();
        let table =
            compute_forwarding_table(&g, my_uid, &info.host_ports, RouteKind::UpDown).unwrap();
        let num = g.number_of(my_uid).unwrap();
        // Packets to my control processor are delivered to port 0.
        let cp_addr = ShortAddress::assigned(num, 0);
        let e = table.lookup(info.links[0].local_port, cp_addr);
        assert_eq!(e.ports, PortSet::single(0));
        // Packets to an unused port address on my switch discard.
        let unused = ShortAddress::assigned(num, 11);
        assert!(table.lookup(0, unused).is_discard());
    }

    #[test]
    fn forwarding_table_routes_across_line() {
        let topo = gen::line(3, 0);
        let g = global_from_view_simple(&topo.view_all()).unwrap();
        // Switch 1 (uid 1, the root) routes to switch 3 via its link to 2.
        let table = compute_forwarding_table(&g, Uid::new(1), &[], RouteKind::UpDown).unwrap();
        let n3 = g.number_of(Uid::new(3)).unwrap();
        let addr = ShortAddress::assigned(n3, 0);
        let e = table.lookup(0, addr);
        assert!(!e.is_discard());
        assert_eq!(e.ports.len(), 1);
    }

    #[test]
    fn broadcast_entries_flood_down_and_climb_up() {
        let mut topo = gen::line(3, 0);
        gen::add_dual_homed_hosts(&mut topo, 1, 5);
        let g = global_from_view_simple(&topo.view_all()).unwrap();
        // Middle switch (uid 2): packets from the parent flood to children
        // and hosts; packets from hosts climb to the parent.
        let info = g.switch(Uid::new(2)).unwrap().clone();
        let table =
            compute_forwarding_table(&g, Uid::new(2), &info.host_ports, RouteKind::UpDown).unwrap();
        let down = table.lookup(info.parent_port, ShortAddress::BROADCAST_ALL);
        assert!(down.broadcast);
        assert!(down.ports.contains(0), "CP gets bcast-all");
        let host_port = info.host_ports[0];
        let up = table.lookup(host_port, ShortAddress::BROADCAST_ALL);
        assert!(!up.broadcast);
        assert_eq!(up.ports, PortSet::single(info.parent_port));
    }

    #[test]
    fn down_to_up_entries_discard() {
        // On a ring, some destinations are unreachable legally from a
        // down-phase arrival; those entries must discard.
        let topo = gen::ring(6, 0);
        let g = global_from_view_simple(&topo.view_all()).unwrap();
        let rc = RouteComputer::new(&g);
        let mut found_discard = false;
        for s in g.switches.iter() {
            let table = compute_forwarding_table(&g, s.uid, &[], RouteKind::UpDown).unwrap();
            for d in g.switches.iter() {
                if d.uid == s.uid {
                    continue;
                }
                let num = g.number_of(d.uid).unwrap();
                for l in &s.links {
                    let e = table.lookup(l.local_port, ShortAddress::assigned(num, 0));
                    if e.is_discard() {
                        found_discard = true;
                    }
                }
            }
        }
        assert!(found_discard, "a ring must have down-phase discard entries");
        let _ = rc;
    }

    #[test]
    fn parallel_trunk_links_become_alternatives() {
        // 2x1 torus degenerates to a trunk pair between two switches.
        let topo = gen::torus(2, 1, 0);
        assert_eq!(topo.num_links(), 2);
        let g = global_from_view_simple(&topo.view_all()).unwrap();
        let table = compute_forwarding_table(&g, Uid::new(1), &[], RouteKind::UpDown).unwrap();
        let n2 = g.number_of(Uid::new(2)).unwrap();
        let e = table.lookup(0, ShortAddress::assigned(n2, 0));
        assert_eq!(e.ports.len(), 2, "both trunk links should be alternatives");
    }

    #[test]
    fn one_hop_entries_always_present() {
        let topo = gen::line(2, 0);
        let g = global_from_view_simple(&topo.view_all()).unwrap();
        let table = compute_forwarding_table(&g, Uid::new(1), &[], RouteKind::UpDown).unwrap();
        let e = table.lookup(0, ShortAddress::one_hop(1));
        assert_eq!(e.ports, PortSet::single(1));
        let back = table.lookup(5, ShortAddress::one_hop(3));
        assert_eq!(back.ports, PortSet::single(0));
    }
}

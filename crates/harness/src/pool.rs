//! Dense struct-of-arrays storage for node harnesses.
//!
//! Backends that simulate many switches keep one [`NodeHarness`] per
//! node. Storing them `Vec`-per-field (the harness slots in one dense
//! array, the dead-port mirrors in another) keeps the hot read paths —
//! a neighbor's status synthesis peeking at this node's dead-port
//! verdicts, convergence checks scanning every Autopilot — off the
//! harness structs entirely: they walk small flat arrays indexed by the
//! dense node id instead of chasing per-node allocations.
//!
//! The take/put discipline mirrors what the packet-level backend always
//! did inline: an entry point removes the harness from its slot (so the
//! environment view may borrow the rest of the world), runs it, and
//! puts it back; [`put`](HarnessPool::put) refreshes the dead-port
//! mirror from the Autopilot's verdicts at that moment, so other nodes
//! reading the mirror between entry points see exactly the live state.

use autonet_core::{Autopilot, PortState};
use autonet_wire::{PortIndex, MAX_PORTS};

use crate::node::NodeHarness;

/// Struct-of-arrays pool of [`NodeHarness`] slots, indexed by dense
/// node id (the backend's switch index).
#[derive(Default)]
pub struct HarnessPool {
    /// The harness slots. `None` only while that node's entry point is
    /// running (between [`take`](Self::take) and [`put`](Self::put)).
    slots: Vec<Option<NodeHarness>>,
    /// Per-node dead-port mirror: the packet-level stand-in for the
    /// link unit's `idhy` hook, readable without touching the harness.
    dead: Vec<[bool; MAX_PORTS]>,
}

impl HarnessPool {
    /// An empty pool.
    pub fn new() -> Self {
        HarnessPool::default()
    }

    /// Appends a node; returns its dense id. Ports boot Dead, so the
    /// mirror starts all-condemned.
    pub fn push(&mut self, harness: NodeHarness) -> usize {
        self.slots.push(Some(harness));
        self.dead.push([true; MAX_PORTS]);
        self.slots.len() - 1
    }

    /// Number of nodes in the pool.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Removes node `i`'s harness for an entry-point run.
    ///
    /// # Panics
    ///
    /// Panics if the harness is already taken (a re-entered node).
    pub fn take(&mut self, i: usize) -> NodeHarness {
        self.slots[i].take().expect("harness re-entered")
    }

    /// Returns node `i`'s harness after an entry-point run and
    /// refreshes its dead-port mirror from the Autopilot's verdicts
    /// (port states only change inside entry points).
    pub fn put(&mut self, i: usize, harness: NodeHarness) {
        for (port, dead) in self.dead[i].iter_mut().enumerate() {
            *dead = harness.autopilot().port_state(port as PortIndex) == PortState::Dead;
        }
        self.slots[i] = Some(harness);
    }

    /// Replaces node `i` wholesale (a reboot): fresh harness, mirror
    /// back to all-condemned.
    pub fn reset(&mut self, i: usize, harness: NodeHarness) {
        self.slots[i] = Some(harness);
        self.dead[i] = [true; MAX_PORTS];
    }

    /// Node `i`'s harness, for inspection.
    pub fn harness(&self, i: usize) -> &NodeHarness {
        self.slots[i].as_ref().expect("harness in place")
    }

    /// Node `i`'s control program, for inspection.
    pub fn autopilot(&self, i: usize) -> &Autopilot {
        self.harness(i).autopilot()
    }

    /// Node `i`'s control program, mutably (SRP reply draining).
    pub fn autopilot_mut(&mut self, i: usize) -> &mut Autopilot {
        self.slots[i]
            .as_mut()
            .expect("harness in place")
            .autopilot_mut()
    }

    /// The mirrored dead-port verdict for node `i` port `port`.
    pub fn is_dead(&self, i: usize, port: PortIndex) -> bool {
        self.dead[i][port as usize]
    }

    /// Node `i`'s whole dead-port row (for replicas that latch another
    /// shard's verdicts wholesale).
    pub fn dead_row(&self, i: usize) -> &[bool; MAX_PORTS] {
        &self.dead[i]
    }

    /// Writes one mirror entry directly (the environment's
    /// `set_port_dead` hook, fired while the harness is taken out).
    pub fn set_dead(&mut self, i: usize, port: PortIndex, dead: bool) {
        self.dead[i][port as usize] = dead;
    }

    /// Every node's control program, in dense-id order.
    pub fn autopilots(&self) -> impl Iterator<Item = &Autopilot> {
        self.slots
            .iter()
            .map(|s| s.as_ref().expect("harness in place").autopilot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autonet_core::AutopilotParams;
    use autonet_wire::Uid;

    fn harness(uid: u64) -> NodeHarness {
        NodeHarness::new(Autopilot::new(Uid::new(uid), AutopilotParams::tuned(), 0))
    }

    #[test]
    fn push_take_put_round_trips() {
        let mut pool = HarnessPool::new();
        let a = pool.push(harness(1));
        let b = pool.push(harness(2));
        assert_eq!((a, b), (0, 1));
        assert_eq!(pool.len(), 2);
        let h = pool.take(1);
        assert_eq!(h.autopilot().uid(), Uid::new(2));
        pool.put(1, h);
        assert_eq!(pool.autopilot(1).uid(), Uid::new(2));
        let uids: Vec<Uid> = pool.autopilots().map(|ap| ap.uid()).collect();
        assert_eq!(uids, vec![Uid::new(1), Uid::new(2)]);
    }

    #[test]
    fn mirror_starts_condemned_and_tracks_port_states() {
        let mut pool = HarnessPool::new();
        pool.push(harness(1));
        assert!(pool.is_dead(0, 3));
        pool.set_dead(0, 3, false);
        assert!(!pool.is_dead(0, 3));
        // put() re-derives the mirror from the Autopilot: a fresh one
        // has every port Dead again.
        let h = pool.take(0);
        pool.put(0, h);
        assert!(pool.is_dead(0, 3));
    }

    #[test]
    fn reset_installs_a_fresh_node() {
        let mut pool = HarnessPool::new();
        pool.push(harness(1));
        pool.set_dead(0, 2, false);
        pool.reset(0, harness(9));
        assert_eq!(pool.autopilot(0).uid(), Uid::new(9));
        assert!(pool.is_dead(0, 2));
    }

    #[test]
    #[should_panic(expected = "harness re-entered")]
    fn double_take_panics() {
        let mut pool = HarnessPool::new();
        pool.push(harness(1));
        let _h = pool.take(0);
        pool.take(0);
    }
}

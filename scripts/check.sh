#!/usr/bin/env sh
# The local gate: exactly what CI runs. Operates on the workspace
# default-members (crates/bench is excluded so the check needs no
# criterion fetch; run `cargo bench` explicitly for experiments).
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q

echo "==> golden traces"
cargo test -q --test golden_traces

echo "==> tracing overhead"
cargo test -q --test determinism disabled_tracing

echo "==> campaign corpus (release)"
cargo test --release -q --test check_campaigns -- --ignored

echo "==> scale tier (release)"
cargo test --release -q --test scale -- --ignored
cargo test --release -q --test harness_conformance -- --ignored

echo "==> worst-case tier (release)"
cargo test --release -q --test worst_case -- --ignored
cargo test --release -q --test worst_case_goldens -- --include-ignored

echo "==> scale smoke + bench JSON schema"
SCALE_SMOKE=1 cargo bench -q -p autonet-bench --bench exp_scale
WORST_CASE_SMOKE=1 cargo bench -q -p autonet-bench --bench exp_worst_case
python3 scripts/check_bench_schema.py \
    BENCH_scale_smoke.json BENCH_scale.json \
    BENCH_worst_case_smoke.json \
    BENCH_reconfig.json BENCH_interruption.json

echo "==> Perfetto trace schema"
# The smoke bench above just emitted the flagship span trace; validate it
# together with the committed golden export.
python3 scripts/check_trace_schema.py \
    artifacts/e22_fat_tree_256.trace.json \
    tests/goldens/single_link_cut.trace.json

# Opt-in: regenerate the machine-readable experiment results at the repo
# root (BENCH_reconfig.json, BENCH_interruption.json) and gate the fresh
# E1 numbers against the committed baseline: the dominant critical-path
# phase must not move and median reconfiguration time must not regress.
# Off by default — the bench crate sits outside default-members.
if [ "${AUTONET_BENCH_JSON:-0}" = "1" ]; then
    echo "==> bench JSON (E1 reconfig, E21 interruption, E24 worst case)"
    cargo bench -q -p autonet-bench --bench exp_reconfig_time
    cargo bench -q -p autonet-bench --bench exp_interruption
    cargo bench -q -p autonet-bench --bench exp_worst_case
    python3 scripts/check_bench_schema.py \
        BENCH_reconfig.json BENCH_interruption.json BENCH_worst_case.json
    echo "==> reconfig critical-path gate"
    python3 scripts/check_reconfig_gate.py BENCH_reconfig.json
fi

echo "OK"

//! Link-unit hardware status bits.
//!
//! Each link unit reports status the control processor polls (companion
//! paper §6.5.2). Three bits reflect the *current* condition of the port;
//! the rest are *accumulated*: they latch when a condition occurs and clear
//! when read. The status sampler reads them every sampling interval and
//! feeds counters from which port states are classified.

/// The pollable status register of one link unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkUnitStatus {
    // Current conditions.
    /// Last flow control received indicates a host is attached.
    pub is_host: bool,
    /// Last flow control received allows transmission.
    pub xmit_ok: bool,
    /// The transmitter is in the middle of a packet.
    pub in_packet: bool,

    // Accumulated conditions (latched until read).
    /// The receiver reported a code violation.
    pub bad_code: bool,
    /// Out-of-place flow control, unused command value, or bad framing.
    pub bad_syntax: bool,
    /// The receive FIFO overflowed.
    pub overflow: bool,
    /// The FIFO underflowed inside a packet.
    pub underflow: bool,
    /// An `idhy` directive was received.
    pub idhy_seen: bool,
    /// A `panic` directive was received.
    pub panic_seen: bool,
    /// The FIFO forwarded some bytes, or has seen no packets.
    pub progress_seen: bool,
    /// A `start` or `host` directive was received.
    pub start_seen: bool,
}

impl LinkUnitStatus {
    /// Creates a fresh register; a port that has seen no packets reports
    /// progress (per the paper's definition of `ProgressSeen`).
    pub fn new() -> Self {
        LinkUnitStatus {
            progress_seen: true,
            ..Default::default()
        }
    }

    /// Reads the register, clearing the accumulated bits. The current-state
    /// bits (`is_host`, `xmit_ok`, `in_packet`) are preserved, and
    /// `progress_seen` re-latches to `true` only when the sampler observes
    /// progress again.
    pub fn read_and_clear(&mut self) -> LinkUnitStatus {
        let snapshot = *self;
        self.bad_code = false;
        self.bad_syntax = false;
        self.overflow = false;
        self.underflow = false;
        self.idhy_seen = false;
        self.panic_seen = false;
        self.progress_seen = false;
        self.start_seen = false;
        snapshot
    }

    /// Returns `true` if any accumulated error condition is latched.
    pub fn any_error(&self) -> bool {
        self.bad_code || self.bad_syntax || self.overflow || self.underflow || self.panic_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_port_reports_progress() {
        let s = LinkUnitStatus::new();
        assert!(s.progress_seen);
        assert!(!s.any_error());
    }

    #[test]
    fn read_and_clear_latches() {
        let mut s = LinkUnitStatus::new();
        s.bad_code = true;
        s.start_seen = true;
        s.is_host = true;
        let snap = s.read_and_clear();
        assert!(snap.bad_code);
        assert!(snap.start_seen);
        assert!(snap.is_host);
        // Accumulated bits cleared, current bits kept.
        assert!(!s.bad_code);
        assert!(!s.start_seen);
        assert!(!s.progress_seen);
        assert!(s.is_host);
    }

    #[test]
    fn any_error_covers_error_bits_only() {
        let mut s = LinkUnitStatus::new();
        assert!(!s.any_error());
        s.idhy_seen = true;
        assert!(!s.any_error(), "idhy alone is not an error condition");
        s.bad_syntax = true;
        assert!(s.any_error());
    }
}

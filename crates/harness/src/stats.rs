//! Unified network counters shared by every backend.

use autonet_sim::SimTime;

/// Aggregate counters every Autonet backend maintains, so tests and
/// benches read convergence and traffic metrics from one API whether the
/// substrate is packet-level or slot-level.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Data frames injected by workloads.
    pub data_sent: u64,
    /// Data frames delivered to hosts.
    pub data_delivered: u64,
    /// Data packets discarded by forwarding tables (includes packets
    /// dropped while reconfiguration had tables cleared).
    pub data_discarded: u64,
    /// Control packets transmitted.
    pub control_sent: u64,
    /// Packets lost on failed links/switches.
    pub lost_in_flight: u64,
    /// Control packets dropped because the control processor's receive
    /// buffers were full (recovered by retransmission).
    pub cpu_queue_drops: u64,
    /// Switch reopenings (completed reconfigurations observed).
    pub opens: u64,
    /// Switch closings (reconfigurations begun).
    pub closes: u64,
    /// Time of the most recent open/closed state change — the true
    /// completion instant of the last reconfiguration.
    pub last_state_change: SimTime,
}

impl NetStats {
    /// Records a completed reconfiguration (a switch reopening).
    pub fn note_open(&mut self, now: SimTime) {
        self.opens += 1;
        self.last_state_change = now;
    }

    /// Records the start of a reconfiguration (a switch closing).
    pub fn note_close(&mut self, now: SimTime) {
        self.closes += 1;
        self.last_state_change = now;
    }

    /// Fraction of injected data frames that were delivered.
    pub fn delivery_rate(&self) -> f64 {
        self.data_delivered as f64 / self.data_sent.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_track_last_state_change() {
        let mut s = NetStats::default();
        s.note_close(SimTime::from_millis(5));
        s.note_open(SimTime::from_millis(9));
        assert_eq!(s.opens, 1);
        assert_eq!(s.closes, 1);
        assert_eq!(s.last_state_change, SimTime::from_millis(9));
        s.data_sent = 4;
        s.data_delivered = 3;
        assert!((s.delivery_rate() - 0.75).abs() < 1e-9);
    }
}

//! Integration: routes computed by the control plane drive the
//! slot-accurate datapath. Up\*/down\* tables deliver everything without
//! deadlock where cyclically-dependent routes wedge the fabric solid.

use std::collections::BTreeMap;

use autonet::autopilot::{compute_forwarding_table, global_from_view_simple, RouteKind};
use autonet::switch::datapath::{DatapathConfig, DatapathSim, DpHostId, DpSwitchId, RunOutcome};
use autonet::switch::{ForwardingEntry, PortSet};
use autonet::topo::{gen, SwitchId, Topology};
use autonet::wire::{ShortAddress, Uid};

/// Builds a slot-level datapath from a topology (hosts on their primary
/// attachments) with tables computed by the control-plane algorithm.
/// Returns the sim plus each host's (id, short address).
fn datapath_with_computed_tables(
    topo: &Topology,
    kind: RouteKind,
    config: DatapathConfig,
) -> (DatapathSim, Vec<(DpHostId, ShortAddress)>) {
    let global = global_from_view_simple(&topo.view_all()).expect("non-empty topology");
    let mut sim = DatapathSim::new(config);
    let sw: Vec<DpSwitchId> = topo.switch_ids().map(|_| sim.add_switch()).collect();
    // Wire trunk links with their real latencies.
    for lid in topo.link_ids() {
        let spec = topo.link(lid);
        if spec.is_loopback() {
            continue;
        }
        sim.connect_switches(
            sw[spec.a.switch.0],
            spec.a.port,
            sw[spec.b.switch.0],
            spec.b.port,
            spec.timing.latency_slots().max(1) as usize,
        );
    }
    // Hosts on their primary ports.
    let mut hosts = Vec::new();
    for hid in topo.host_ids() {
        let spec = topo.host(hid);
        let h = sim.add_host();
        sim.connect_host(h, sw[spec.primary.switch.0], spec.primary.port, 7);
        let num = global
            .number_of(topo.switch(spec.primary.switch).uid)
            .expect("numbered");
        hosts.push((h, ShortAddress::assigned(num, spec.primary.port)));
    }
    // Load the control plane's tables, with primary host ports live.
    let live: BTreeMap<SwitchId, Vec<u8>> = topo
        .switch_ids()
        .map(|s| {
            (
                s,
                topo.hosts_at(s)
                    .filter(|(_, _, alt)| !alt)
                    .map(|(p, _, _)| p)
                    .collect(),
            )
        })
        .collect();
    for s in topo.switch_ids() {
        let uid = topo.switch(s).uid;
        let table =
            compute_forwarding_table(&global, uid, &live[&s], kind).expect("switch in topology");
        *sim.table_mut(sw[s.0]) = table;
    }
    (sim, hosts)
}

/// A topology for the datapath tests: a 3x3 torus with one single-homed
/// host per switch.
fn torus_with_hosts(seed: u64) -> Topology {
    let mut topo = gen::torus(3, 3, seed);
    for s in 0..9 {
        let suid = 0x10_0000 + s as u64;
        topo.attach_host(Uid::new(0xBEEF_0000 + suid), SwitchId(s), None)
            .expect("port available");
    }
    topo
}

#[test]
fn computed_updown_tables_deliver_all_pairs() {
    let topo = torus_with_hosts(3);
    let (mut sim, hosts) =
        datapath_with_computed_tables(&topo, RouteKind::UpDown, DatapathConfig::default());
    // Every host sends one packet to every other host.
    let mut expected = 0;
    for (i, &(h, _)) in hosts.iter().enumerate() {
        for (j, &(_, addr)) in hosts.iter().enumerate() {
            if i != j {
                sim.send(h, addr, 200, false);
                expected += 1;
            }
        }
    }
    let outcome = sim.run_until_drained(30_000_000, 50_000);
    assert_eq!(outcome, RunOutcome::Drained);
    assert_eq!(sim.deliveries().len(), expected);
    assert_eq!(sim.stats().discarded, 0, "no packet may fall off a route");
    assert_eq!(sim.stats().fifo_overflows, 0);
}

#[test]
fn heavy_updown_traffic_never_deadlocks() {
    // Long packets, all-pairs, limited buffering: the stress pattern that
    // wedges cyclic routes. Up*/down* must drain it.
    let topo = torus_with_hosts(5);
    let (mut sim, hosts) =
        datapath_with_computed_tables(&topo, RouteKind::UpDown, DatapathConfig::default());
    for round in 0..3 {
        for (i, &(h, _)) in hosts.iter().enumerate() {
            let j = (i + 1 + round) % hosts.len();
            if j != i {
                sim.send(h, hosts[j].1, 4000, false);
            }
        }
    }
    let outcome = sim.run_until_drained(80_000_000, 100_000);
    assert_eq!(outcome, RunOutcome::Drained);
    assert_eq!(sim.stats().discarded, 0);
}

#[test]
fn cyclic_routes_deadlock_on_a_ring_where_updown_does_not() {
    // Hand-built clockwise routes on a 4-ring: every packet takes two
    // clockwise hops. The channel-dependency cycle wedges for real once
    // packets are longer than the buffering.
    fn build(clockwise: bool) -> (DatapathSim, Vec<(DpHostId, ShortAddress)>) {
        let mut topo = gen::ring(4, 0);
        for s in 0..4 {
            topo.attach_host(Uid::new(0xCAFE + s as u64), SwitchId(s), None)
                .expect("port");
        }
        if !clockwise {
            let (sim, hosts) =
                datapath_with_computed_tables(&topo, RouteKind::UpDown, DatapathConfig::default());
            return (sim, hosts);
        }
        // Manual clockwise tables. Ring links from gen::ring: link i joins
        // switch i (port 2 for i>0, port 1 for i=0... ports assigned in
        // creation order), so derive ports from the topology itself.
        let mut sim = DatapathSim::new(DatapathConfig::default());
        let sw: Vec<DpSwitchId> = (0..4).map(|_| sim.add_switch()).collect();
        for lid in topo.link_ids() {
            let spec = topo.link(lid);
            sim.connect_switches(
                sw[spec.a.switch.0],
                spec.a.port,
                sw[spec.b.switch.0],
                spec.b.port,
                7,
            );
        }
        let mut hosts = Vec::new();
        for hid in topo.host_ids() {
            let spec = topo.host(hid);
            let h = sim.add_host();
            sim.connect_host(h, sw[spec.primary.switch.0], spec.primary.port, 7);
            hosts.push((
                h,
                ShortAddress::assigned(spec.primary.switch.0 as u16 + 1, spec.primary.port),
            ));
        }
        // Clockwise next hop: the port on switch i leading to (i+1) % 4.
        let next_port = |i: usize| -> u8 {
            let view = topo.view_all();
            let port = view
                .neighbors(SwitchId(i))
                .find(|(_, _, far)| far.switch.0 == (i + 1) % 4)
                .map(|(p, _, _)| p)
                .expect("ring neighbor");
            port
        };
        for i in 0..4 {
            let dest_two_away = hosts[(i + 2) % 4].1;
            let dest_one_away = hosts[(i + 1) % 4].1;
            // From the host port: clockwise out.
            let host_port = topo.host(autonet::topo::HostId(i)).primary.port;
            for dst in [dest_two_away, dest_one_away] {
                sim.table_mut(sw[i]).set(
                    host_port,
                    dst,
                    ForwardingEntry::alternatives(PortSet::single(next_port(i))),
                );
            }
            // Transit: packets for the local host deliver; others continue
            // clockwise.
            let in_port = next_port((i + 3) % 4); // The port facing i-1 is
                                                  // where clockwise traffic
                                                  // arrives... derive below.
            let _ = in_port;
            for j in 0..4 {
                if j == i {
                    continue;
                }
                let arrive_port = topo
                    .view_all()
                    .neighbors(SwitchId(i))
                    .find(|(_, _, far)| far.switch.0 == (i + 3) % 4)
                    .map(|(p, _, _)| p)
                    .expect("ccw neighbor");
                if hosts[i].1 == hosts[j].1 {
                    continue;
                }
                // Transit packets continue clockwise.
                let entry = ForwardingEntry::alternatives(PortSet::single(next_port(i)));
                sim.table_mut(sw[i]).set(arrive_port, hosts[j].1, entry);
            }
            // Local delivery from the ring.
            let arrive_port = topo
                .view_all()
                .neighbors(SwitchId(i))
                .find(|(_, _, far)| far.switch.0 == (i + 3) % 4)
                .map(|(p, _, _)| p)
                .expect("ccw neighbor");
            sim.table_mut(sw[i]).set(
                arrive_port,
                hosts[i].1,
                ForwardingEntry::alternatives(PortSet::single(
                    topo.host(autonet::topo::HostId(i)).primary.port,
                )),
            );
        }
        (sim, hosts)
    }

    // Clockwise: all four hosts send 12 KB two hops clockwise at once.
    let (mut sim, hosts) = build(true);
    for i in 0..4 {
        sim.send(hosts[i].0, hosts[(i + 2) % 4].1, 12_000, false);
    }
    let outcome = sim.run_until_drained(10_000_000, 20_000);
    assert_eq!(
        outcome,
        RunOutcome::Deadlocked,
        "cyclic clockwise routes must wedge"
    );

    // Same offered pattern under computed up*/down* tables: drains.
    let (mut sim, hosts) = build(false);
    for i in 0..4 {
        sim.send(hosts[i].0, hosts[(i + 2) % 4].1, 12_000, false);
    }
    let outcome = sim.run_until_drained(10_000_000, 20_000);
    assert_eq!(outcome, RunOutcome::Drained);
    assert_eq!(sim.deliveries().len(), 4);
}

#[test]
fn broadcast_tables_flood_every_host_exactly_once() {
    let topo = torus_with_hosts(7);
    let (mut sim, hosts) =
        datapath_with_computed_tables(&topo, RouteKind::UpDown, DatapathConfig::default());
    sim.send(hosts[4].0, ShortAddress::BROADCAST_HOSTS, 300, true);
    let outcome = sim.run_until_drained(30_000_000, 50_000);
    assert_eq!(outcome, RunOutcome::Drained);
    let mut seen = std::collections::BTreeMap::new();
    for d in sim.deliveries() {
        *seen.entry(d.host).or_insert(0u32) += 1;
    }
    assert_eq!(seen.len(), hosts.len(), "all hosts reached: {seen:?}");
    assert!(seen.values().all(|&c| c == 1), "no duplicates: {seen:?}");
}

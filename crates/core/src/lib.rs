//! Autopilot: Autonet's automatic reconfiguration control plane.
//!
//! This crate is the reproduction of the SOSP '91 paper's contribution —
//! the distributed system that lets an arbitrary mesh of switches configure
//! itself, detect faults and repairs, and recompute deadlock-free routes,
//! with prompt termination detection so the network reopens quickly:
//!
//! - [`PortState`] and the monitoring tower: hardware status bits feed the
//!   [`StatusSampler`], which classifies ports; the [`ConnectivityMonitor`]
//!   verifies switch neighbors by packet exchange; two [`Skeptic`]s add the
//!   hysteresis that keeps flapping links from thrashing the network.
//! - [`Epoch`]-tagged reconfiguration: any change to the set of usable
//!   switch-to-switch links starts a higher epoch; all switches converge on
//!   the highest.
//! - The distributed spanning tree with termination detection
//!   ([`TreePosition`], [`ReconfigEngine`]): Perlman's algorithm extended
//!   with the stability protocol of Rodeheffer and Lamport, so the root
//!   learns promptly and provably when the tree is complete.
//! - Topology accumulation up the tree, short-address assignment at the
//!   root ([`assign_switch_numbers`]), distribution down the tree, and
//!   local computation of up\*/down\* minimal multipath routes
//!   ([`compute_forwarding_table`], [`RouteComputer`]).
//! - [`Autopilot`]: the per-switch control program tying it all together as
//!   a pure state machine (`on_packet` / `on_status_sample` / `on_tick` →
//!   actions), directly testable without a simulator and bindable to any
//!   transport.
//! - Baselines for the experiments: timeout-based termination
//!   ([`TerminationMode::RootQuiescence`]) and unrestricted shortest-path
//!   routing ([`RouteKind::Unrestricted`]).

mod addressing;
mod autopilot;
mod connectivity;
pub mod dataplane;
mod epoch;
pub mod events;
mod messages;
mod params;
mod port_state;
mod reconfig;
mod route_cache;
mod routes;
mod sampler;
mod skeptic;
mod topology;
mod tree;

pub use addressing::assign_switch_numbers;
pub use autopilot::{Action, Autopilot, PortHardwareReport};
pub use connectivity::{ConnectivityEvent, ConnectivityMonitor, NeighborId};
pub use dataplane::{ProbeOutcome, ProbeRecord};
pub use epoch::Epoch;
pub use events::{Event, ReconfigCause, SkepticKind, SkepticVerdict, TransitionCause};
pub use messages::{ControlMsg, MsgCodecError, SrpPayload};
pub use params::{AutopilotParams, TerminationMode};
pub use port_state::PortState;
pub use reconfig::{NeighborInfo, ReconfigEngine, ReconfigEvent, ReconfigOutput};
pub use route_cache::{RouteCache, RouteCacheStats};
pub use routes::{
    compute_forwarding_table, global_from_view, global_from_view_simple, program_one_hop,
    RouteComputer, RouteKind, RoutingStats,
};
pub use sampler::{SamplerEvent, StatusSampler};
pub use skeptic::Skeptic;
pub use topology::{GlobalTopology, LinkInfo, SubtreeReport, SwitchInfo};
pub use tree::TreePosition;

#!/usr/bin/env sh
# Measure data-plane service interruption across a trunk cut: probe
# flows between every host, per-pair blackout windows with epoch
# attribution, and the critical path of the reconfiguration that caused
# them (EXPERIMENTS.md E21).
#
# Usage: scripts/interruption.sh [topology]
#   ring   4-switch ring, one dual-homed host per switch (default)
#   src    the 30-switch SRC network from the paper
set -eu
cd "$(dirname "$0")/.."

cargo run --release --quiet --example interruption "${1:-ring}"

//! The packet-level network simulation.
//!
//! Control plane at full fidelity (every Autopilot message is a real
//! packet with bandwidth, propagation and control-processor costs), data
//! plane at packet granularity (forwarding-table lookups per hop, link
//! serialization, no per-byte flow control — that lives in the slot-level
//! model of `autonet-switch::datapath`).

use std::collections::BTreeMap;

use autonet_core::{
    compute_forwarding_table, global_from_view, Action, Autopilot, ControlMsg, Epoch, PortState,
    RouteKind,
};
use autonet_host::{EthFrame, HostAction, HostController, IP_ETHERTYPE};
use autonet_sim::{Scheduler, SimDuration, SimRng, SimTime, Simulator, World};
use autonet_switch::{ForwardingTable, LinkUnitStatus};
use autonet_topo::{HostId, LinkId, NetView, PortUse, SwitchId, Topology};
use autonet_wire::{Packet, PacketType, PortIndex, ShortAddress, SwitchNumber, Uid, MAX_PORTS};

use crate::params::NetParams;

/// Which physical path carried a packet (checked again at delivery so
/// packets in flight on a failing link are lost).
#[derive(Clone, Copy, Debug)]
#[doc(hidden)]
pub enum Via {
    Link(usize),
    HostLink(usize, usize),
    Reflection,
}

/// Simulation events (public only because the `World` impl exposes the
/// type; constructed exclusively through `Network` methods).
#[doc(hidden)]
pub enum Event {
    SwitchBoot {
        s: usize,
    },
    SwitchTick {
        s: usize,
    },
    SwitchSample {
        s: usize,
    },
    SwitchRx {
        s: usize,
        port: PortIndex,
        packet: Packet,
        via: Via,
    },
    SwitchCpuDone {
        s: usize,
        port: PortIndex,
        packet: Packet,
    },
    HostBoot {
        h: usize,
    },
    HostTick {
        h: usize,
    },
    HostRx {
        h: usize,
        cport: usize,
        packet: Packet,
        via: Via,
    },
    HostSend {
        h: usize,
        dst: Uid,
        len: usize,
        tag: u64,
    },
    SrpRequest {
        s: usize,
        route: Vec<PortIndex>,
        payload: autonet_core::SrpPayload,
    },
    LinkDown {
        l: usize,
    },
    LinkUp {
        l: usize,
    },
    SwitchDown {
        s: usize,
    },
    SwitchUp {
        s: usize,
    },
    HostLinkDown {
        h: usize,
        which: usize,
    },
    HostLinkUp {
        h: usize,
        which: usize,
    },
    HostPowerOff {
        h: usize,
    },
    HostPowerOn {
        h: usize,
    },
}

/// Observable network happenings, timestamped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: NetEventKind,
}

/// Kinds of observable events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetEventKind {
    /// A switch closed for host traffic (reconfiguration step 1).
    SwitchClosed(SwitchId),
    /// A switch reopened with the given epoch.
    SwitchOpened(SwitchId, Epoch),
    /// A host failed over to the other controller port.
    HostPortSwitched(HostId, usize),
    /// A host learned a short address.
    HostAddressLearned(HostId, ShortAddress),
    /// A fault-injection event took effect.
    Fault(String),
}

/// One delivered data frame.
#[derive(Clone, Debug)]
pub struct DeliveryRecord {
    /// Delivery time.
    pub time: SimTime,
    /// The receiving host.
    pub host: HostId,
    /// Sender UID.
    pub src: Uid,
    /// The workload tag (first 8 payload bytes), 0 if none.
    pub tag: u64,
    /// Payload length.
    pub len: usize,
}

/// Aggregate counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetworkStats {
    /// Data frames injected by workloads.
    pub data_sent: u64,
    /// Data frames delivered to hosts.
    pub data_delivered: u64,
    /// Data packets discarded by forwarding tables (includes packets
    /// dropped while reconfiguration had tables cleared).
    pub data_discarded: u64,
    /// Control packets transmitted.
    pub control_sent: u64,
    /// Packets lost on failed links/switches.
    pub lost_in_flight: u64,
    /// Control packets dropped because the control processor's receive
    /// buffers were full (recovered by retransmission).
    pub cpu_queue_drops: u64,
}

struct SwitchSim {
    ap: Autopilot,
    table: ForwardingTable,
    cpu_free: SimTime,
    up: bool,
}

struct HostSim {
    ctl: HostController,
    up: bool,
}

/// The simulation world (driven through [`Network`]).
pub struct NetWorld {
    topo: Topology,
    params: NetParams,
    switches: Vec<SwitchSim>,
    hosts: Vec<HostSim>,
    link_up: Vec<bool>,
    /// Per-direction link busy times; index 0 = a→b.
    link_busy: Vec<[SimTime; 2]>,
    host_link_up: Vec<[bool; 2]>,
    /// When a host was powered off with its cables still attached, the
    /// unterminated links reflect signals (§5.3, §7) until the switch's
    /// status sampler sees enough BadCode to kill the port.
    host_powered_off_at: Vec<Option<SimTime>>,
    /// [host][attachment][direction]; direction 0 = host→switch.
    host_link_busy: Vec<[[SimTime; 2]; 2]>,
    events: Vec<NetEvent>,
    deliveries: Vec<DeliveryRecord>,
    stats: NetworkStats,
    /// Time of the most recent open/closed state change, for convergence
    /// measurement.
    last_state_change: SimTime,
    /// Randomness for loss injection (seeded; deterministic).
    rng: SimRng,
}

/// A running Autonet built from a topology.
pub struct Network {
    sim: Simulator<NetWorld>,
}

const HOST_LINK_LATENCY_NS: u64 = 7 * 80; // 100 m coax.
const SWITCH_TRANSIT: SimDuration = SimDuration::from_micros(2);

impl Network {
    /// Builds a network and schedules every switch and host to boot within
    /// the configured jitter of t = 0.
    pub fn new(topo: Topology, params: NetParams, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let switches = topo
            .switch_ids()
            .map(|s| SwitchSim {
                ap: Autopilot::new(topo.switch(s).uid, params.autopilot, s.0 as u32),
                table: ForwardingTable::new(),
                cpu_free: SimTime::ZERO,
                up: true,
            })
            .collect();
        let hosts = topo
            .host_ids()
            .map(|h| HostSim {
                ctl: HostController::new(
                    topo.host(h).uid,
                    params.host,
                    topo.host(h).alternate.is_some(),
                ),
                up: true,
            })
            .collect();
        let world = NetWorld {
            link_up: vec![true; topo.num_links()],
            link_busy: vec![[SimTime::ZERO; 2]; topo.num_links()],
            host_link_up: vec![[true; 2]; topo.num_hosts()],
            host_powered_off_at: vec![None; topo.num_hosts()],
            host_link_busy: vec![[[SimTime::ZERO; 2]; 2]; topo.num_hosts()],
            switches,
            hosts,
            events: Vec::new(),
            deliveries: Vec::new(),
            stats: NetworkStats::default(),
            last_state_change: SimTime::ZERO,
            rng: rng.fork(1),
            topo,
            params,
        };
        let mut sim = Simulator::new(world);
        let jitter = sim.world().params.boot_jitter.as_nanos().max(1);
        for s in 0..sim.world().switches.len() {
            let at = SimTime::from_nanos(rng.below(jitter));
            sim.schedule_at(at, Event::SwitchBoot { s });
        }
        for h in 0..sim.world().hosts.len() {
            let at = SimTime::from_nanos(rng.below(jitter));
            sim.schedule_at(at, Event::HostBoot { h });
        }
        Network { sim }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The static topology.
    pub fn topology(&self) -> &Topology {
        &self.sim.world().topo
    }

    /// A switch's control program, for inspection.
    pub fn autopilot(&self, s: SwitchId) -> &Autopilot {
        &self.sim.world().switches[s.0].ap
    }

    /// A switch's currently loaded forwarding table.
    pub fn forwarding_table(&self, s: SwitchId) -> &ForwardingTable {
        &self.sim.world().switches[s.0].table
    }

    /// A host's controller, for inspection.
    pub fn host(&self, h: HostId) -> &HostController {
        &self.sim.world().hosts[h.0].ctl
    }

    /// The observable event log.
    pub fn events(&self) -> &[NetEvent] {
        &self.sim.world().events
    }

    /// Delivered data frames.
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        &self.sim.world().deliveries
    }

    /// Aggregate counters.
    pub fn stats(&self) -> NetworkStats {
        self.sim.world().stats
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, span: SimDuration) {
        self.sim.run_for(span);
    }

    /// Runs until the control plane is stable: every up switch open, all on
    /// one epoch with consistent topology. Returns the time of the last
    /// open/close state change (the true completion instant), or `None` if
    /// the deadline passed first.
    pub fn run_until_stable(&mut self, deadline: SimTime) -> Option<SimTime> {
        let step = SimDuration::from_millis(20);
        while self.sim.now() < deadline {
            self.sim.run_for(step);
            if self.control_plane_consistent() {
                return Some(self.sim.world().last_state_change);
            }
        }
        None
    }

    /// Whether the control plane has converged to the physical truth:
    /// every up switch is open, and within each *physical* connected
    /// component (up switches and links) all members share one epoch and
    /// one topology that covers exactly that component, rooted at its
    /// smallest UID.
    pub fn control_plane_consistent(&self) -> bool {
        let w = self.sim.world();
        let view = w.physical_view();
        for component in autonet_topo::connected_components(&view) {
            let min_uid = component
                .iter()
                .map(|&s| w.topo.switch(s).uid)
                .min()
                .expect("components are non-empty");
            let mut first: Option<&autonet_core::GlobalTopology> = None;
            for &sid in &component {
                let sw = &w.switches[sid.0];
                if !sw.ap.is_open() {
                    return false;
                }
                let Some(g) = sw.ap.global() else {
                    return false;
                };
                if g.root != min_uid || g.switches.len() != component.len() {
                    return false;
                }
                match first {
                    None => first = Some(g),
                    Some(f) => {
                        if g.epoch != f.epoch || g.numbers != f.numbers {
                            return false;
                        }
                    }
                }
            }
        }
        // The agreed topology must list exactly the usable physical links:
        // a failed link still listed means the fault is not yet absorbed; a
        // repaired link missing means readmission is still pending. Combined
        // with the containment check below, matching end-counts give
        // exact equality.
        let mut usable_ends = 0usize;
        for lid in view.usable_links() {
            let spec = w.topo.link(lid);
            if view.switch_up(spec.a.switch) && view.switch_up(spec.b.switch) {
                usable_ends += 2;
            }
        }
        let mut listed_ends = 0usize;
        for sw in w.switches.iter().filter(|s| s.up) {
            if let Some(g) = sw.ap.global() {
                if let Some(info) = g.switch(sw.ap.uid()) {
                    listed_ends += info.links.len();
                }
            }
        }
        if usable_ends != listed_ends {
            return false;
        }
        for lid in view.usable_links() {
            let spec = w.topo.link(lid);
            let a_uid = w.topo.switch(spec.a.switch).uid;
            let b_uid = w.topo.switch(spec.b.switch).uid;
            let listed = |sw: &SwitchSim, my_port: PortIndex, far: Uid, far_port: PortIndex| {
                sw.ap.global().is_some_and(|g| {
                    g.switch(sw.ap.uid()).is_some_and(|info| {
                        info.links.iter().any(|l| {
                            l.local_port == my_port
                                && l.neighbor == far
                                && l.neighbor_port == far_port
                        })
                    })
                })
            };
            if !listed(
                &w.switches[spec.a.switch.0],
                spec.a.port,
                b_uid,
                spec.b.port,
            ) || !listed(
                &w.switches[spec.b.switch.0],
                spec.b.port,
                a_uid,
                spec.a.port,
            ) {
                return false;
            }
        }
        true
    }

    /// Verifies the converged control plane against the graph-theoretic
    /// reference ([`global_from_view`]): same root, same levels.
    ///
    /// # Errors
    ///
    /// Returns a description of the first discrepancy.
    pub fn check_against_reference(&self) -> Result<(), String> {
        let w = self.sim.world();
        let view = w.physical_view();
        let proposals: BTreeMap<Uid, SwitchNumber> = BTreeMap::new();
        let Some(reference) = global_from_view(&view, Epoch(0), &proposals) else {
            return Ok(());
        };
        let ref_levels = reference.levels().expect("reference is well-formed");
        for (si, sw) in w.switches.iter().enumerate() {
            if !sw.up {
                continue;
            }
            let uid = w.topo.switch(SwitchId(si)).uid;
            if !ref_levels.contains_key(&uid) {
                continue; // A partition not containing the reference root.
            }
            let Some(g) = sw.ap.global() else {
                return Err(format!("switch {si} has no topology"));
            };
            if g.root != reference.root {
                return Err(format!(
                    "switch {si}: root {} != reference {}",
                    g.root, reference.root
                ));
            }
            let levels = g
                .levels()
                .ok_or_else(|| format!("switch {si}: broken tree"))?;
            if levels.get(&uid) != ref_levels.get(&uid) {
                return Err(format!(
                    "switch {si}: level {:?} != reference {:?}",
                    levels.get(&uid),
                    ref_levels.get(&uid)
                ));
            }
        }
        Ok(())
    }

    /// Schedules a source-routed (SRP, §6.7) request originating at a
    /// switch's control processor. Collect answers with
    /// [`take_srp_replies`](Network::take_srp_replies).
    pub fn schedule_srp(
        &mut self,
        at: SimTime,
        from: SwitchId,
        route: Vec<PortIndex>,
        payload: autonet_core::SrpPayload,
    ) {
        self.sim.schedule_at(
            at,
            Event::SrpRequest {
                s: from.0,
                route,
                payload,
            },
        );
    }

    /// Drains the SRP answers received by a switch's control processor.
    pub fn take_srp_replies(&mut self, s: SwitchId) -> Vec<autonet_core::SrpPayload> {
        self.sim.world_mut().switches[s.0].ap.srp_replies()
    }

    /// Schedules a host data frame.
    pub fn schedule_host_send(&mut self, at: SimTime, h: HostId, dst: Uid, len: usize, tag: u64) {
        self.sim.schedule_at(
            at,
            Event::HostSend {
                h: h.0,
                dst,
                len,
                tag,
            },
        );
    }

    /// Schedules a link failure.
    pub fn schedule_link_down(&mut self, at: SimTime, l: LinkId) {
        self.sim.schedule_at(at, Event::LinkDown { l: l.0 });
    }

    /// Schedules a link repair.
    pub fn schedule_link_up(&mut self, at: SimTime, l: LinkId) {
        self.sim.schedule_at(at, Event::LinkUp { l: l.0 });
    }

    /// Schedules a switch crash.
    pub fn schedule_switch_down(&mut self, at: SimTime, s: SwitchId) {
        self.sim.schedule_at(at, Event::SwitchDown { s: s.0 });
    }

    /// Schedules a switch power-on (reboots a fresh Autopilot).
    pub fn schedule_switch_up(&mut self, at: SimTime, s: SwitchId) {
        self.sim.schedule_at(at, Event::SwitchUp { s: s.0 });
    }

    /// Schedules a host power-off with cables left attached: the
    /// unterminated links *reflect* (§5.3), which is what made the §7
    /// broadcast storm possible, until the switch's status sampler counts
    /// enough code violations to kill the ports.
    pub fn schedule_host_power_off(&mut self, at: SimTime, h: HostId) {
        self.sim.schedule_at(at, Event::HostPowerOff { h: h.0 });
    }

    /// Schedules the host powering back on.
    pub fn schedule_host_power_on(&mut self, at: SimTime, h: HostId) {
        self.sim.schedule_at(at, Event::HostPowerOn { h: h.0 });
    }

    /// Schedules a host-link failure (`which`: 0 primary, 1 alternate).
    pub fn schedule_host_link_down(&mut self, at: SimTime, h: HostId, which: usize) {
        self.sim
            .schedule_at(at, Event::HostLinkDown { h: h.0, which });
    }

    /// Schedules a host-link repair.
    pub fn schedule_host_link_up(&mut self, at: SimTime, h: HostId, which: usize) {
        self.sim
            .schedule_at(at, Event::HostLinkUp { h: h.0, which });
    }

    /// Schedules `2 * cycles` alternating down/up events on a link: a
    /// flapping (intermittent) cable.
    pub fn schedule_link_flaps(
        &mut self,
        from: SimTime,
        l: LinkId,
        half_period: SimDuration,
        cycles: usize,
    ) {
        let mut t = from;
        for _ in 0..cycles {
            self.schedule_link_down(t, l);
            t += half_period;
            self.schedule_link_up(t, l);
            t += half_period;
        }
    }

    /// Merges every switch's circular trace log into one time-ordered
    /// history — the paper's primary debugging tool (§6.7).
    pub fn merged_trace(&self) -> Vec<autonet_sim::TraceEntry> {
        let logs: Vec<&autonet_sim::TraceLog> = self
            .sim
            .world()
            .switches
            .iter()
            .map(|s| &s.ap.log)
            .collect();
        autonet_sim::TraceLog::merge(logs)
    }

    /// Total reconfigurations initiated across all switches.
    pub fn total_reconfigs_triggered(&self) -> u64 {
        self.sim
            .world()
            .switches
            .iter()
            .map(|s| s.ap.reconfigs_triggered())
            .sum()
    }
}

impl NetWorld {
    /// The live physical view: up links and switches.
    fn physical_view(&self) -> NetView<'_> {
        let mut view = self.topo.view_all();
        for (l, up) in self.link_up.iter().enumerate() {
            if !up {
                view.fail_link(LinkId(l));
            }
        }
        for (s, sw) in self.switches.iter().enumerate() {
            if !sw.up {
                view.fail_switch(SwitchId(s));
            }
        }
        view
    }

    fn log_event(&mut self, time: SimTime, kind: NetEventKind) {
        self.events.push(NetEvent { time, kind });
    }

    /// Wire time of a packet at the configured link rate.
    fn wire_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(bytes as u64 * 8 * 1_000_000_000 / self.params.link_bps)
    }

    /// Transmits `packet` out of switch `s` port `port`.
    fn transmit_from_switch(
        &mut self,
        now: SimTime,
        s: usize,
        port: PortIndex,
        packet: Packet,
        sched: &mut Scheduler<'_, Event>,
    ) {
        match self.topo.port_use(SwitchId(s), port) {
            PortUse::Link(lid) => {
                let spec = self.topo.link(lid).clone();
                if !self.link_up[lid.0] {
                    return;
                }
                // Identify this end by (switch, port) so loopback cables
                // work too.
                let (dir, to, to_port) = if spec.a.switch.0 == s && spec.a.port == port {
                    (0, spec.b.switch.0, spec.b.port)
                } else {
                    (1, spec.a.switch.0, spec.a.port)
                };
                let start = self.link_busy[lid.0][dir].max(now);
                let done = start + self.wire_time(packet.wire_len());
                self.link_busy[lid.0][dir] = done;
                let arrive = done + SimDuration::from_nanos(spec.timing.latency_ns());
                sched.at(
                    arrive,
                    Event::SwitchRx {
                        s: to,
                        port: to_port,
                        packet,
                        via: Via::Link(lid.0),
                    },
                );
            }
            PortUse::Host(hid, alt) => {
                let which = usize::from(alt);
                if !self.host_link_up[hid.0][which] {
                    return;
                }
                let start = self.host_link_busy[hid.0][which][1].max(now);
                let done = start + self.wire_time(packet.wire_len());
                self.host_link_busy[hid.0][which][1] = done;
                if self.host_powered_off_at[hid.0].is_some() {
                    // The cable ends at an unpowered controller: the signal
                    // reflects and arrives back at this very port (§5.3).
                    let back = done + SimDuration::from_nanos(2 * HOST_LINK_LATENCY_NS);
                    sched.at(
                        back,
                        Event::SwitchRx {
                            s,
                            port,
                            packet,
                            via: Via::HostLink(hid.0, which),
                        },
                    );
                    return;
                }
                let arrive = done + SimDuration::from_nanos(HOST_LINK_LATENCY_NS);
                sched.at(
                    arrive,
                    Event::HostRx {
                        h: hid.0,
                        cport: which,
                        packet,
                        via: Via::HostLink(hid.0, which),
                    },
                );
            }
            PortUse::Free => {
                // An uncabled port reflects its own signal (§5.3): the
                // packet comes straight back.
                sched.after(
                    SimDuration::from_micros(2),
                    Event::SwitchRx {
                        s,
                        port,
                        packet,
                        via: Via::Reflection,
                    },
                );
            }
            PortUse::ControlProcessor => {
                // Port 0 loops to the local control processor.
                sched.after(
                    SimDuration::from_micros(1),
                    Event::SwitchRx {
                        s,
                        port: 0,
                        packet,
                        via: Via::Reflection,
                    },
                );
            }
        }
    }

    /// Transmits `packet` from host `h` controller port `cport`.
    fn transmit_from_host(
        &mut self,
        now: SimTime,
        h: usize,
        cport: usize,
        packet: Packet,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let spec = self.topo.host(HostId(h));
        let attach = if cport == 0 {
            Some(spec.primary)
        } else {
            spec.alternate
        };
        let Some(attach) = attach else { return };
        if !self.host_link_up[h][cport] {
            return;
        }
        let start = self.host_link_busy[h][cport][0].max(now);
        let done = start + self.wire_time(packet.wire_len());
        self.host_link_busy[h][cport][0] = done;
        let arrive = done + SimDuration::from_nanos(HOST_LINK_LATENCY_NS);
        sched.at(
            arrive,
            Event::SwitchRx {
                s: attach.switch.0,
                port: attach.port,
                packet,
                via: Via::HostLink(h, cport),
            },
        );
    }

    /// Executes a batch of Autopilot actions for switch `s`.
    fn apply_switch_actions(
        &mut self,
        now: SimTime,
        s: usize,
        actions: Vec<Action>,
        sched: &mut Scheduler<'_, Event>,
    ) {
        for action in actions {
            match action {
                Action::Send { port, msg } => {
                    let ptype = match msg {
                        ControlMsg::Probe { .. } | ControlMsg::ProbeReply { .. } => {
                            PacketType::Probe
                        }
                        ControlMsg::ShortAddrRequest { .. } | ControlMsg::ShortAddrReply { .. } => {
                            PacketType::HostSwitch
                        }
                        ControlMsg::Srp { .. } => PacketType::Srp,
                        _ => PacketType::Reconfig,
                    };
                    let dst = if port >= 1 {
                        ShortAddress::one_hop(port)
                    } else {
                        ShortAddress::TO_LOCAL_SWITCH
                    };
                    let packet =
                        Packet::new(dst, ShortAddress::TO_LOCAL_SWITCH, ptype, msg.encode());
                    self.stats.control_sent += 1;
                    self.transmit_from_switch(now, s, port, packet, sched);
                }
                Action::LoadTable(table) => {
                    self.switches[s].table = table;
                }
                Action::NetworkOpen { epoch } => {
                    self.last_state_change = now;
                    self.log_event(now, NetEventKind::SwitchOpened(SwitchId(s), epoch));
                }
                Action::NetworkClosed => {
                    self.last_state_change = now;
                    self.log_event(now, NetEventKind::SwitchClosed(SwitchId(s)));
                }
            }
        }
    }

    /// Executes a batch of host controller actions.
    fn apply_host_actions(
        &mut self,
        now: SimTime,
        h: usize,
        actions: Vec<HostAction>,
        sched: &mut Scheduler<'_, Event>,
    ) {
        for action in actions {
            match action {
                HostAction::Transmit { port, packet } => {
                    self.transmit_from_host(now, h, port, packet, sched);
                }
                HostAction::Deliver(frame) => {
                    let tag = if frame.payload.len() >= 8 {
                        u64::from_be_bytes(frame.payload[..8].try_into().expect("8 bytes"))
                    } else {
                        0
                    };
                    self.stats.data_delivered += 1;
                    self.deliveries.push(DeliveryRecord {
                        time: now,
                        host: HostId(h),
                        src: frame.src,
                        tag,
                        len: frame.payload.len(),
                    });
                }
                HostAction::PortSwitched { active } => {
                    self.log_event(now, NetEventKind::HostPortSwitched(HostId(h), active));
                }
                HostAction::AddressLearned(addr) => {
                    self.log_event(now, NetEventKind::HostAddressLearned(HostId(h), addr));
                }
            }
        }
    }

    /// Synthesizes the hardware status bits for one switch port from the
    /// physical state of whatever is cabled there.
    fn synthesize_status(&self, now: SimTime, s: usize, port: PortIndex) -> Option<LinkUnitStatus> {
        let mut status = LinkUnitStatus::new();
        status.start_seen = true;
        status.progress_seen = true;
        match self.topo.port_use(SwitchId(s), port) {
            PortUse::ControlProcessor => None,
            PortUse::Free => {
                // Reflection: the port hears its own (switch-style) flow
                // control, so it looks like a clean switch link.
                Some(status)
            }
            PortUse::Link(lid) => {
                let spec = self.topo.link(lid);
                let other = if spec.a.switch.0 == s && spec.a.port == port {
                    spec.b
                } else {
                    spec.a
                };
                if !self.link_up[lid.0] || !self.switches[other.switch.0].up {
                    // Broken cable or dark far end: code violations.
                    status.bad_code = true;
                    status.start_seen = false;
                    Some(status)
                } else {
                    // The far end sends idhy while it condemns the link.
                    let remote_state = self.switches[other.switch.0].ap.port_state(other.port);
                    status.idhy_seen = remote_state == PortState::Dead;
                    Some(status)
                }
            }
            PortUse::Host(hid, alt) => {
                let which = usize::from(alt);
                let host = &self.hosts[hid.0];
                if let Some(off_at) = self.host_powered_off_at[hid.0] {
                    // A reflecting link: the port hears its own flow
                    // control (looks switch-like) until the noise of the
                    // unterminated cable registers as code violations —
                    // "almost always", per §7; modeled as a detection delay.
                    if now.saturating_since(off_at) > self.params.reflect_detect_delay {
                        status.bad_code = true;
                        status.start_seen = false;
                    } else {
                        status.is_host = false;
                        status.start_seen = true;
                    }
                    Some(status)
                } else if !self.host_link_up[hid.0][which] || !host.up {
                    status.bad_code = true;
                    status.start_seen = false;
                    Some(status)
                } else if host.ctl.active_port() == which {
                    status.is_host = true;
                    Some(status)
                } else {
                    // The alternate port carries sync only: the constant
                    // BadSyntax signature with no flow-control directives.
                    status.bad_syntax = true;
                    status.is_host = false;
                    Some(status)
                }
            }
        }
    }

    /// Data-plane forwarding of one packet arriving at a switch.
    fn forward_data(
        &mut self,
        now: SimTime,
        s: usize,
        in_port: PortIndex,
        packet: Packet,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let entry = self.switches[s].table.lookup(in_port, packet.dst);
        if entry.is_discard() {
            self.stats.data_discarded += 1;
            return;
        }
        if entry.broadcast {
            for port in entry.ports.iter() {
                if port == 0 {
                    continue; // The CP ignores data packets.
                }
                self.transmit_from_switch(now + SWITCH_TRANSIT, s, port, packet.clone(), sched);
            }
        } else {
            // Dynamic alternative choice: the hardware takes the first free
            // port; the packet-level equivalent is the least-busy one.
            let mut best: Option<(SimTime, PortIndex)> = None;
            for port in entry.ports.iter() {
                if port == 0 {
                    // Deliveries to the CP address reach the control
                    // processor; data packets there are ignored, matching
                    // the hardware (the CP just never consumes them).
                    continue;
                }
                let busy = self.port_busy_until(s, port);
                let better = match best {
                    None => true,
                    Some((b, _)) => busy < b,
                };
                if better {
                    best = Some((busy, port));
                }
            }
            match best {
                Some((_, port)) => {
                    self.transmit_from_switch(now + SWITCH_TRANSIT, s, port, packet, sched);
                }
                None => self.stats.data_discarded += 1,
            }
        }
    }

    fn port_busy_until(&self, s: usize, port: PortIndex) -> SimTime {
        match self.topo.port_use(SwitchId(s), port) {
            PortUse::Link(lid) => {
                let spec = self.topo.link(lid);
                let dir = usize::from(!(spec.a.switch.0 == s && spec.a.port == port));
                self.link_busy[lid.0][dir]
            }
            PortUse::Host(hid, alt) => self.host_link_busy[hid.0][usize::from(alt)][1],
            _ => SimTime::MAX,
        }
    }

    /// Whether the physical path a packet used is still intact.
    fn via_intact(&self, via: Via) -> bool {
        match via {
            Via::Link(l) => self.link_up[l],
            Via::HostLink(h, w) => self.host_link_up[h][w],
            Via::Reflection => true,
        }
    }
}

impl World for NetWorld {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<'_, Event>) {
        match event {
            Event::SwitchBoot { s } => {
                if !self.switches[s].up {
                    return;
                }
                let actions = self.switches[s].ap.boot(now);
                self.apply_switch_actions(now, s, actions, sched);
                sched.after(
                    self.params.autopilot.timer_resolution,
                    Event::SwitchTick { s },
                );
                sched.after(
                    self.params.autopilot.sampling_interval,
                    Event::SwitchSample { s },
                );
            }
            Event::SwitchTick { s } => {
                if !self.switches[s].up {
                    return;
                }
                let actions = self.switches[s].ap.on_tick(now);
                self.apply_switch_actions(now, s, actions, sched);
                sched.after(
                    self.params.autopilot.timer_resolution,
                    Event::SwitchTick { s },
                );
            }
            Event::SwitchSample { s } => {
                if !self.switches[s].up {
                    return;
                }
                for port in 1..MAX_PORTS as PortIndex {
                    if let Some(status) = self.synthesize_status(now, s, port) {
                        let actions = self.switches[s].ap.on_status_sample(now, port, status);
                        self.apply_switch_actions(now, s, actions, sched);
                    }
                }
                sched.after(
                    self.params.autopilot.sampling_interval,
                    Event::SwitchSample { s },
                );
            }
            Event::SwitchRx {
                s,
                port,
                packet,
                via,
            } => {
                if !self.switches[s].up || !self.via_intact(via) {
                    self.stats.lost_in_flight += 1;
                    return;
                }
                if packet.ptype != PacketType::Data
                    && self.params.control_loss_rate > 0.0
                    && self.rng.chance(self.params.control_loss_rate)
                {
                    // A marginal link corrupted the packet; the CRC check
                    // on the control processor rejects it.
                    self.stats.lost_in_flight += 1;
                    return;
                }
                match packet.ptype {
                    PacketType::Data => self.forward_data(now, s, port, packet, sched),
                    PacketType::HostSwitch
                        if self.switches[s].ap.port_state(port)
                            != autonet_core::PortState::Host =>
                    {
                        // A host's service packet (addressed 0000) reaches
                        // the control processor only via the forwarding
                        // entry installed when the port is classified
                        // s.host; before that it is discarded like any
                        // host traffic.
                        self.stats.data_discarded += 1;
                    }
                    _ => {
                        // Control packet: charge the control processor. The
                        // real 68000 had a finite receive-buffer pool; model
                        // it as a bounded backlog — overload drops packets,
                        // and the protocols recover by retransmission.
                        let cost = self.params.cpu.cost(packet.payload.len());
                        let backlog = self.switches[s].cpu_free.saturating_since(now);
                        if backlog > self.params.cpu_backlog_cap {
                            self.stats.cpu_queue_drops += 1;
                            return;
                        }
                        let start = self.switches[s].cpu_free.max(now);
                        self.switches[s].cpu_free = start + cost;
                        sched.at(start + cost, Event::SwitchCpuDone { s, port, packet });
                    }
                }
            }
            Event::SwitchCpuDone { s, port, packet } => {
                if !self.switches[s].up {
                    return;
                }
                if let Ok(msg) = ControlMsg::decode(&packet.payload) {
                    let actions = self.switches[s].ap.on_packet(now, port, &msg);
                    self.apply_switch_actions(now, s, actions, sched);
                }
            }
            Event::HostBoot { h } => {
                if !self.hosts[h].up {
                    return;
                }
                let actions = self.hosts[h].ctl.boot(now);
                self.apply_host_actions(now, h, actions, sched);
                sched.after(self.params.host_tick, Event::HostTick { h });
            }
            Event::HostTick { h } => {
                if !self.hosts[h].up {
                    return;
                }
                let actions = self.hosts[h].ctl.on_tick(now);
                self.apply_host_actions(now, h, actions, sched);
                sched.after(self.params.host_tick, Event::HostTick { h });
            }
            Event::HostRx {
                h,
                cport,
                packet,
                via,
            } => {
                if !self.hosts[h].up || !self.via_intact(via) {
                    self.stats.lost_in_flight += 1;
                    return;
                }
                let actions = self.hosts[h].ctl.on_packet(now, cport, &packet);
                self.apply_host_actions(now, h, actions, sched);
            }
            Event::HostSend { h, dst, len, tag } => {
                if !self.hosts[h].up {
                    return;
                }
                let mut payload = Vec::with_capacity(len.max(8));
                payload.extend_from_slice(&tag.to_be_bytes());
                payload.resize(len.max(8), 0);
                let frame = EthFrame::new(dst, self.hosts[h].ctl.uid(), IP_ETHERTYPE, payload);
                self.stats.data_sent += 1;
                let actions = self.hosts[h].ctl.send(now, frame);
                self.apply_host_actions(now, h, actions, sched);
            }
            Event::SrpRequest { s, route, payload } => {
                if !self.switches[s].up {
                    return;
                }
                let actions = self.switches[s].ap.srp_request(route, payload);
                self.apply_switch_actions(now, s, actions, sched);
            }
            Event::LinkDown { l } => {
                self.link_up[l] = false;
                self.log_event(now, NetEventKind::Fault(format!("link {l} down")));
            }
            Event::LinkUp { l } => {
                self.link_up[l] = true;
                self.log_event(now, NetEventKind::Fault(format!("link {l} up")));
            }
            Event::SwitchDown { s } => {
                self.switches[s].up = false;
                self.log_event(now, NetEventKind::Fault(format!("switch {s} down")));
            }
            Event::SwitchUp { s } => {
                let uid = self.topo.switch(SwitchId(s)).uid;
                self.switches[s] = SwitchSim {
                    ap: Autopilot::new(uid, self.params.autopilot, s as u32),
                    table: ForwardingTable::new(),
                    cpu_free: now,
                    up: true,
                };
                self.log_event(now, NetEventKind::Fault(format!("switch {s} up")));
                sched.after(SimDuration::ZERO, Event::SwitchBoot { s });
            }
            Event::HostPowerOff { h } => {
                self.hosts[h].up = false;
                self.host_powered_off_at[h] = Some(now);
                self.log_event(now, NetEventKind::Fault(format!("host {h} powered off")));
            }
            Event::HostPowerOn { h } => {
                self.hosts[h].up = true;
                self.host_powered_off_at[h] = None;
                let uid = self.topo.host(HostId(h)).uid;
                let dual = self.topo.host(HostId(h)).alternate.is_some();
                self.hosts[h].ctl = HostController::new(uid, self.params.host, dual);
                self.log_event(now, NetEventKind::Fault(format!("host {h} powered on")));
                sched.after(SimDuration::ZERO, Event::HostBoot { h });
            }
            Event::HostLinkDown { h, which } => {
                self.host_link_up[h][which] = false;
                self.log_event(
                    now,
                    NetEventKind::Fault(format!("host {h} link {which} down")),
                );
            }
            Event::HostLinkUp { h, which } => {
                self.host_link_up[h][which] = true;
                self.log_event(
                    now,
                    NetEventKind::Fault(format!("host {h} link {which} up")),
                );
            }
        }
    }
}

/// Reference to ensure the route computation used here stays in sync with
/// what Autopilot loads (compile-time use of the shared function).
#[allow(dead_code)]
fn _table_type_check(g: &autonet_core::GlobalTopology, uid: Uid) -> Option<ForwardingTable> {
    compute_forwarding_table(g, uid, &[], RouteKind::UpDown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autonet_topo::gen;

    fn stable_net(topo: Topology, seed: u64) -> Network {
        let mut net = Network::new(topo, NetParams::tuned(), seed);
        let done = net.run_until_stable(SimTime::from_secs(30));
        assert!(done.is_some(), "network failed to converge");
        net
    }

    #[test]
    fn line_converges_and_matches_reference() {
        let net = stable_net(gen::line(4, 42), 1);
        net.check_against_reference().expect("reference match");
    }

    #[test]
    fn torus_converges() {
        let net = stable_net(gen::torus(4, 4, 7), 2);
        net.check_against_reference().expect("reference match");
        // Every switch has 4 good ports on a 4x4 torus.
        for s in net.topology().switch_ids() {
            assert_eq!(net.autopilot(s).good_ports().len(), 4);
        }
    }

    #[test]
    fn hosts_learn_addresses_and_exchange_data() {
        let mut topo = gen::line(2, 0);
        gen::add_dual_homed_hosts(&mut topo, 1, 3);
        let mut net = stable_net(topo, 3);
        let h0 = HostId(0);
        let h1 = HostId(1);
        // Hosts poll the switch for addresses on their own (slower)
        // cadence; give them a few liveness rounds.
        net.run_for(SimDuration::from_secs(3));
        assert!(net.host(h0).short_address().is_some());
        assert!(net.host(h1).short_address().is_some());
        let dst = net.topology().host(h1).uid;
        let t0 = net.now();
        net.schedule_host_send(t0 + SimDuration::from_millis(10), h0, dst, 256, 99);
        net.run_for(SimDuration::from_secs(1));
        let d: Vec<_> = net.deliveries().iter().filter(|d| d.tag == 99).collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].host, h1);
    }

    #[test]
    fn link_failure_triggers_reconfiguration_and_reroutes() {
        let mut topo = gen::ring(4, 5);
        gen::add_dual_homed_hosts(&mut topo, 1, 9);
        let mut net = stable_net(topo, 4);
        let epoch_before = net.autopilot(SwitchId(0)).epoch();
        // Fail one ring link; the ring still connects everything.
        let t = net.now() + SimDuration::from_millis(50);
        net.schedule_link_down(t, LinkId(0));
        net.run_for(SimDuration::from_millis(100)); // Let the fault land.
        let done = net.run_until_stable(net.now() + SimDuration::from_secs(30));
        assert!(done.is_some(), "must reconverge after link failure");
        assert!(net.autopilot(SwitchId(0)).epoch() > epoch_before);
        net.check_against_reference()
            .expect("reference match after failure");
        // Data still flows between hosts on opposite sides.
        let h0 = HostId(0);
        let h2 = HostId(2);
        let dst = net.topology().host(h2).uid;
        let sent_at = net.now() + SimDuration::from_millis(10);
        net.schedule_host_send(sent_at, h0, dst, 128, 7);
        net.run_for(SimDuration::from_secs(1));
        assert!(net.deliveries().iter().any(|d| d.tag == 7 && d.host == h2));
    }

    #[test]
    fn partition_forms_two_networks() {
        // A line cut in the middle partitions into two halves, each of
        // which must configure itself.
        let topo = gen::line(4, 0);
        let mut net = stable_net(topo, 5);
        let cut = LinkId(1); // Between switches 1 and 2.
        let t = net.now() + SimDuration::from_millis(50);
        net.schedule_link_down(t, cut);
        net.run_for(SimDuration::from_millis(100));
        let done = net.run_until_stable(net.now() + SimDuration::from_secs(30));
        assert!(done.is_some(), "both partitions must stabilize");
        let g0 = net.autopilot(SwitchId(0)).global().unwrap();
        let g3 = net.autopilot(SwitchId(3)).global().unwrap();
        assert_eq!(g0.switches.len(), 2);
        assert_eq!(g3.switches.len(), 2);
        assert_ne!(g0.root, g3.root);
        // Healing merges them again.
        let t2 = net.now() + SimDuration::from_millis(50);
        net.schedule_link_up(t2, cut);
        net.run_for(SimDuration::from_millis(100));
        let done = net.run_until_stable(net.now() + SimDuration::from_secs(30));
        assert!(done.is_some(), "healed network must stabilize");
        assert_eq!(
            net.autopilot(SwitchId(0)).global().unwrap().switches.len(),
            4
        );
    }

    #[test]
    fn switch_crash_and_reboot() {
        let topo = gen::ring(4, 11);
        let mut net = stable_net(topo, 6);
        let victim = SwitchId(2);
        let t = net.now() + SimDuration::from_millis(50);
        net.schedule_switch_down(t, victim);
        net.run_for(SimDuration::from_millis(100));
        let done = net.run_until_stable(net.now() + SimDuration::from_secs(30));
        assert!(done.is_some());
        let g = net.autopilot(SwitchId(0)).global().unwrap();
        assert_eq!(
            g.switches.len(),
            3,
            "survivors configure without the victim"
        );
        // Power it back on.
        let t2 = net.now() + SimDuration::from_millis(50);
        net.schedule_switch_up(t2, victim);
        net.run_for(SimDuration::from_millis(100));
        let done = net.run_until_stable(net.now() + SimDuration::from_secs(60));
        assert!(done.is_some());
        assert_eq!(
            net.autopilot(SwitchId(0)).global().unwrap().switches.len(),
            4
        );
    }

    #[test]
    fn broadcast_reaches_all_hosts() {
        let mut topo = gen::line(3, 0);
        gen::add_dual_homed_hosts(&mut topo, 1, 13);
        let mut net = stable_net(topo, 7);
        let t = net.now() + SimDuration::from_millis(10);
        net.schedule_host_send(t, HostId(0), autonet_host::BROADCAST_UID, 64, 55);
        net.run_for(SimDuration::from_secs(1));
        let receivers: std::collections::BTreeSet<HostId> = net
            .deliveries()
            .iter()
            .filter(|d| d.tag == 55)
            .map(|d| d.host)
            .collect();
        // Flooding reaches every host port exactly once each, including
        // the sender's own.
        assert_eq!(receivers.len(), 3, "{receivers:?}");
    }
}

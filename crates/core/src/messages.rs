//! Control-plane messages and their wire codec.
//!
//! Everything Autopilot says to a neighbor travels in an Autonet packet
//! whose payload is one of these messages. Connectivity probes and replies
//! implement the connectivity monitor (§6.5.4); the four
//! tree-position/report/down message kinds implement the five-step
//! reconfiguration (§6.6); the short-address service answers hosts
//! (§6.3); SRP carries the source-routed debugging protocol (§6.7).
//!
//! The codec is hand-rolled big-endian TLV — the control processor had to
//! do all of this in software, and the experiments charge transmission
//! time by encoded size, so the encoding is real, not estimated.

use autonet_wire::{PortIndex, ShortAddress, SwitchNumber, Uid};

use crate::epoch::Epoch;
use crate::topology::{GlobalTopology, LinkInfo, SubtreeReport, SwitchInfo};
use crate::tree::TreePosition;

/// A control-plane message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ControlMsg {
    /// Connectivity test packet, sent periodically on `s.switch.*` ports.
    Probe {
        /// Matches a reply to its probe.
        seq: u64,
        /// The prober's UID.
        origin: Uid,
        /// The prober's local port the probe left by.
        origin_port: PortIndex,
    },
    /// Reply to a [`ControlMsg::Probe`]; echoes the probe's identity.
    ProbeReply {
        /// The probe's sequence number.
        seq: u64,
        /// Echoed prober UID.
        origin: Uid,
        /// Echoed prober port.
        origin_port: PortIndex,
        /// The responder's UID (equal to `origin` on a looped link).
        responder: Uid,
        /// The responder's port the probe arrived on.
        responder_port: PortIndex,
    },
    /// A switch's current tree position, sent to all good neighbors and
    /// retransmitted until acknowledged.
    TreePosition {
        /// The reconfiguration epoch.
        epoch: Epoch,
        /// The sender's position sequence number (bumped on every change).
        seq: u64,
        /// The sender's local port the message left by, so the receiver
        /// can tell which of its links a parent claim refers to.
        from_port: PortIndex,
        /// The advertised position.
        pos: TreePosition,
    },
    /// Acknowledges a [`ControlMsg::TreePosition`].
    ///
    /// The acknowledgment also carries the acker's *own* current position
    /// (fields `sender_*`). This is what makes termination detection
    /// sound: a switch cannot count itself stable until every neighbor has
    /// acknowledged, and each acknowledgment delivers the neighbor's view
    /// — so a better root known to any neighbor reaches the sender before
    /// the sender can conclude stability.
    TreePositionAck {
        /// The epoch being acknowledged.
        epoch: Epoch,
        /// The position sequence number being acknowledged.
        seq: u64,
        /// The "this is now my parent link" bit (§6.6.1).
        is_parent: bool,
        /// The acker's own state version.
        sender_seq: u64,
        /// The acker's local port this ack left by.
        sender_from_port: PortIndex,
        /// The acker's current position.
        sender_pos: TreePosition,
    },
    /// The "I am stable" message carrying the stable subtree's topology,
    /// sent to the parent and retransmitted until acknowledged.
    TopologyReport {
        /// The reconfiguration epoch.
        epoch: Epoch,
        /// The reporter's position sequence number, so the parent can
        /// discard reports from abandoned positions.
        seq: u64,
        /// The subtree description.
        report: SubtreeReport,
    },
    /// Acknowledges a [`ControlMsg::TopologyReport`].
    TopologyReportAck {
        /// The epoch being acknowledged.
        epoch: Epoch,
        /// The report's sequence number.
        seq: u64,
    },
    /// The complete topology flooding down the tree from the root.
    TopologyDown {
        /// The reconfiguration epoch.
        epoch: Epoch,
        /// The global topology, tree and number assignment.
        global: GlobalTopology,
    },
    /// Acknowledges a [`ControlMsg::TopologyDown`].
    TopologyDownAck {
        /// The epoch being acknowledged.
        epoch: Epoch,
    },
    /// A host asking the local switch for its short address (sent to
    /// address `0000`).
    ShortAddrRequest {
        /// The asking host's UID.
        host_uid: Uid,
    },
    /// The switch's answer to a [`ControlMsg::ShortAddrRequest`].
    ShortAddrReply {
        /// Echoed host UID.
        host_uid: Uid,
        /// The short address of the port the request arrived on.
        addr: ShortAddress,
    },
    /// A source-routed debugging packet (§6.7): forwarded control-processor
    /// to control-processor along `route`. Each forwarding switch appends
    /// its arrival port to `back_route`, so the target can source-route the
    /// reply back without any forwarding tables — which is what lets SRP
    /// work even during reconfiguration.
    Srp {
        /// Outbound port numbers, switch by switch.
        route: Vec<PortIndex>,
        /// Index of the next hop to take.
        hop: u8,
        /// Arrival ports recorded along the way (the return path).
        back_route: Vec<PortIndex>,
        /// What the packet asks or answers.
        payload: SrpPayload,
    },
}

/// Payloads of the source-routed protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SrpPayload {
    /// Liveness check.
    Ping,
    /// Answer to [`SrpPayload::Ping`].
    Pong {
        /// The answering switch's UID.
        uid: Uid,
        /// Its current epoch.
        epoch: Epoch,
    },
    /// Asks for a state summary.
    GetState,
    /// Answer to [`SrpPayload::GetState`].
    State {
        /// The answering switch's UID.
        uid: Uid,
        /// Its current epoch.
        epoch: Epoch,
        /// How many ports are in state `s.switch.good`.
        good_ports: u8,
        /// Whether host traffic is currently enabled.
        open: bool,
    },
}

/// Errors raised while decoding a control message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgCodecError {
    /// The payload ended before the message did.
    Truncated,
    /// An unknown message or payload tag.
    BadTag(u8),
    /// A field held an invalid value.
    BadValue,
}

impl std::fmt::Display for MsgCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgCodecError::Truncated => write!(f, "control message truncated"),
            MsgCodecError::BadTag(t) => write!(f, "unknown control message tag {t}"),
            MsgCodecError::BadValue => write!(f, "invalid field value"),
        }
    }
}

impl std::error::Error for MsgCodecError {}

// ---- Encoding helpers ----------------------------------------------------

/// Reports describing more switches than this use the compact encoding
/// (tags 12/13): a UID table up front, then per-switch entries that name
/// parents and neighbors by u16 table index instead of repeating 6-byte
/// UIDs. The classic encoding repeats the neighbor UID on every link, so a
/// topology flood grows ~107 bytes per switch and overflows the packet
/// format's 64 KB data field near 600 switches. The threshold keeps every
/// paper-scale network (the real Autonet had ~30 switches; our goldens use
/// ≤ 100) on the classic bytes — timings and golden traces are untouched —
/// while the E22 scale rows (256/576/1024) fit comfortably. The choice
/// depends only on message content, so it is deterministic.
const COMPACT_REPORT_THRESHOLD: usize = 128;

/// Sentinel index meaning "a literal UID follows" in a compact reference.
const UID_REF_LITERAL: u16 = u16::MAX;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn uid(&mut self, u: Uid) {
        self.buf.extend_from_slice(&u.to_bytes());
    }

    fn pos(&mut self, p: &TreePosition) {
        self.uid(p.root);
        self.u32(p.level);
        self.uid(p.parent);
        self.u8(p.parent_port);
    }

    fn switch_info(&mut self, s: &SwitchInfo) {
        self.uid(s.uid);
        self.u16(s.proposed_number);
        self.uid(s.parent);
        self.u8(s.parent_port);
        self.u16(s.links.len() as u16);
        for l in &s.links {
            self.u8(l.local_port);
            self.uid(l.neighbor);
            self.u8(l.neighbor_port);
        }
        self.u16(s.host_ports.len() as u16);
        for &p in &s.host_ports {
            self.u8(p);
        }
    }

    fn report(&mut self, switches: &[SwitchInfo]) {
        self.u16(switches.len() as u16);
        for s in switches {
            self.switch_info(s);
        }
    }

    /// A UID named by table index when it appears in the report's switch
    /// array, or by [`UID_REF_LITERAL`] + inline UID when it does not
    /// (links crossing the subtree boundary name switches outside it).
    fn uid_ref(&mut self, u: Uid, idx: &std::collections::BTreeMap<Uid, u16>) {
        match idx.get(&u) {
            Some(&i) => self.u16(i),
            None => {
                self.u16(UID_REF_LITERAL);
                self.uid(u);
            }
        }
    }

    /// Two port numbers in one byte. Ports index `0..MAX_PORTS` (13), so
    /// each fits a nibble.
    fn port_pair(&mut self, a: PortIndex, b: PortIndex) {
        assert!(a < 16 && b < 16, "port out of nibble range: {a}/{b}");
        self.u8((a << 4) | b);
    }

    fn compact_report(&mut self, switches: &[SwitchInfo]) {
        let idx: std::collections::BTreeMap<Uid, u16> = switches
            .iter()
            .enumerate()
            .map(|(i, s)| (s.uid, i as u16))
            .collect();
        self.u16(switches.len() as u16);
        for s in switches {
            self.uid(s.uid);
        }
        for s in switches {
            self.u16(s.proposed_number);
            self.uid_ref(s.parent, &idx);
            assert!(s.links.len() < 16 && s.host_ports.len() < 16);
            self.port_pair(s.links.len() as PortIndex, s.host_ports.len() as PortIndex);
            self.u8(s.parent_port);
            for l in &s.links {
                self.port_pair(l.local_port, l.neighbor_port);
                self.uid_ref(l.neighbor, &idx);
            }
            for &p in &s.host_ports {
                self.u8(p);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MsgCodecError> {
        if self.at + n > self.buf.len() {
            return Err(MsgCodecError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, MsgCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, MsgCodecError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, MsgCodecError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, MsgCodecError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn uid(&mut self) -> Result<Uid, MsgCodecError> {
        Ok(Uid::from_bytes(self.take(6)?.try_into().expect("len 6")))
    }

    fn pos(&mut self) -> Result<TreePosition, MsgCodecError> {
        Ok(TreePosition {
            root: self.uid()?,
            level: self.u32()?,
            parent: self.uid()?,
            parent_port: self.u8()?,
        })
    }

    fn switch_info(&mut self) -> Result<SwitchInfo, MsgCodecError> {
        let uid = self.uid()?;
        let proposed_number: SwitchNumber = self.u16()?;
        let parent = self.uid()?;
        let parent_port = self.u8()?;
        let n_links = self.u16()? as usize;
        let mut links = Vec::with_capacity(n_links.min(64));
        for _ in 0..n_links {
            links.push(LinkInfo {
                local_port: self.u8()?,
                neighbor: self.uid()?,
                neighbor_port: self.u8()?,
            });
        }
        let n_hosts = self.u16()? as usize;
        let mut host_ports = Vec::with_capacity(n_hosts.min(16));
        for _ in 0..n_hosts {
            host_ports.push(self.u8()?);
        }
        Ok(SwitchInfo {
            uid,
            proposed_number,
            parent,
            parent_port,
            links,
            host_ports,
        })
    }

    fn report(&mut self) -> Result<SubtreeReport, MsgCodecError> {
        let n = self.u16()? as usize;
        let mut switches = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            switches.push(self.switch_info()?);
        }
        Ok(SubtreeReport { switches })
    }

    /// Resolves a compact UID reference against the report's UID table.
    fn uid_ref(&mut self, uids: &[Uid]) -> Result<Uid, MsgCodecError> {
        let i = self.u16()?;
        if i == UID_REF_LITERAL {
            self.uid()
        } else {
            uids.get(i as usize).copied().ok_or(MsgCodecError::BadValue)
        }
    }

    /// Two nibble-packed port numbers.
    fn port_pair(&mut self) -> Result<(PortIndex, PortIndex), MsgCodecError> {
        let b = self.u8()?;
        Ok((b >> 4, b & 0x0F))
    }

    fn compact_report(&mut self) -> Result<SubtreeReport, MsgCodecError> {
        let n = self.u16()? as usize;
        let mut uids = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            uids.push(self.uid()?);
        }
        let mut switches = Vec::with_capacity(n.min(4096));
        for &uid in &uids {
            let proposed_number: SwitchNumber = self.u16()?;
            let parent = self.uid_ref(&uids)?;
            let (n_links, n_hosts) = self.port_pair()?;
            let parent_port = self.u8()?;
            let mut links = Vec::with_capacity(n_links as usize);
            for _ in 0..n_links {
                let (local_port, neighbor_port) = self.port_pair()?;
                links.push(LinkInfo {
                    local_port,
                    neighbor: self.uid_ref(&uids)?,
                    neighbor_port,
                });
            }
            let mut host_ports = Vec::with_capacity(n_hosts as usize);
            for _ in 0..n_hosts {
                host_ports.push(self.u8()?);
            }
            switches.push(SwitchInfo {
                uid,
                proposed_number,
                parent,
                parent_port,
                links,
                host_ports,
            });
        }
        Ok(SubtreeReport { switches })
    }

    fn done(&self) -> Result<(), MsgCodecError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(MsgCodecError::BadValue)
        }
    }
}

impl ControlMsg {
    /// Serializes the message to its payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ControlMsg::Probe {
                seq,
                origin,
                origin_port,
            } => {
                w.u8(1);
                w.u64(*seq);
                w.uid(*origin);
                w.u8(*origin_port);
            }
            ControlMsg::ProbeReply {
                seq,
                origin,
                origin_port,
                responder,
                responder_port,
            } => {
                w.u8(2);
                w.u64(*seq);
                w.uid(*origin);
                w.u8(*origin_port);
                w.uid(*responder);
                w.u8(*responder_port);
            }
            ControlMsg::TreePosition {
                epoch,
                seq,
                from_port,
                pos,
            } => {
                w.u8(3);
                w.u64(epoch.0);
                w.u64(*seq);
                w.u8(*from_port);
                w.pos(pos);
            }
            ControlMsg::TreePositionAck {
                epoch,
                seq,
                is_parent,
                sender_seq,
                sender_from_port,
                sender_pos,
            } => {
                w.u8(4);
                w.u64(epoch.0);
                w.u64(*seq);
                w.u8(u8::from(*is_parent));
                w.u64(*sender_seq);
                w.u8(*sender_from_port);
                w.pos(sender_pos);
            }
            ControlMsg::TopologyReport { epoch, seq, report } => {
                if report.switches.len() > COMPACT_REPORT_THRESHOLD {
                    w.u8(12);
                    w.u64(epoch.0);
                    w.u64(*seq);
                    w.compact_report(&report.switches);
                } else {
                    w.u8(5);
                    w.u64(epoch.0);
                    w.u64(*seq);
                    w.report(&report.switches);
                }
            }
            ControlMsg::TopologyReportAck { epoch, seq } => {
                w.u8(6);
                w.u64(epoch.0);
                w.u64(*seq);
            }
            ControlMsg::TopologyDown { epoch, global } => {
                if global.switches.len() > COMPACT_REPORT_THRESHOLD {
                    w.u8(13);
                    w.u64(epoch.0);
                    w.uid(global.root);
                    w.compact_report(&global.switches);
                    // Number assignments name switches by table index too —
                    // the keys are (almost) exactly the report's UIDs.
                    let idx: std::collections::BTreeMap<Uid, u16> = global
                        .switches
                        .iter()
                        .enumerate()
                        .map(|(i, s)| (s.uid, i as u16))
                        .collect();
                    w.u16(global.numbers.len() as u16);
                    for (&uid, &num) in global.numbers.iter() {
                        w.uid_ref(uid, &idx);
                        w.u16(num);
                    }
                } else {
                    w.u8(7);
                    w.u64(epoch.0);
                    w.uid(global.root);
                    w.report(&global.switches);
                    w.u16(global.numbers.len() as u16);
                    for (&uid, &num) in global.numbers.iter() {
                        w.uid(uid);
                        w.u16(num);
                    }
                }
            }
            ControlMsg::TopologyDownAck { epoch } => {
                w.u8(8);
                w.u64(epoch.0);
            }
            ControlMsg::ShortAddrRequest { host_uid } => {
                w.u8(9);
                w.uid(*host_uid);
            }
            ControlMsg::ShortAddrReply { host_uid, addr } => {
                w.u8(10);
                w.uid(*host_uid);
                w.u16(addr.as_u16());
            }
            ControlMsg::Srp {
                route,
                hop,
                back_route,
                payload,
            } => {
                w.u8(11);
                w.u8(route.len() as u8);
                for &p in route {
                    w.u8(p);
                }
                w.u8(*hop);
                w.u8(back_route.len() as u8);
                for &p in back_route {
                    w.u8(p);
                }
                match payload {
                    SrpPayload::Ping => w.u8(0),
                    SrpPayload::Pong { uid, epoch } => {
                        w.u8(1);
                        w.uid(*uid);
                        w.u64(epoch.0);
                    }
                    SrpPayload::GetState => w.u8(2),
                    SrpPayload::State {
                        uid,
                        epoch,
                        good_ports,
                        open,
                    } => {
                        w.u8(3);
                        w.uid(*uid);
                        w.u64(epoch.0);
                        w.u8(*good_ports);
                        w.u8(u8::from(*open));
                    }
                }
            }
        }
        w.buf
    }

    /// Parses a message from its payload bytes.
    pub fn decode(bytes: &[u8]) -> Result<ControlMsg, MsgCodecError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            1 => ControlMsg::Probe {
                seq: r.u64()?,
                origin: r.uid()?,
                origin_port: r.u8()?,
            },
            2 => ControlMsg::ProbeReply {
                seq: r.u64()?,
                origin: r.uid()?,
                origin_port: r.u8()?,
                responder: r.uid()?,
                responder_port: r.u8()?,
            },
            3 => ControlMsg::TreePosition {
                epoch: Epoch(r.u64()?),
                seq: r.u64()?,
                from_port: r.u8()?,
                pos: r.pos()?,
            },
            4 => ControlMsg::TreePositionAck {
                epoch: Epoch(r.u64()?),
                seq: r.u64()?,
                is_parent: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(MsgCodecError::BadValue),
                },
                sender_seq: r.u64()?,
                sender_from_port: r.u8()?,
                sender_pos: r.pos()?,
            },
            5 => ControlMsg::TopologyReport {
                epoch: Epoch(r.u64()?),
                seq: r.u64()?,
                report: r.report()?,
            },
            6 => ControlMsg::TopologyReportAck {
                epoch: Epoch(r.u64()?),
                seq: r.u64()?,
            },
            7 => {
                let epoch = Epoch(r.u64()?);
                let root = r.uid()?;
                let switches = r.report()?.switches;
                let n = r.u16()? as usize;
                let mut numbers = std::collections::BTreeMap::new();
                for _ in 0..n {
                    let uid = r.uid()?;
                    let num = r.u16()?;
                    numbers.insert(uid, num);
                }
                ControlMsg::TopologyDown {
                    epoch,
                    global: GlobalTopology {
                        epoch,
                        root,
                        switches: std::sync::Arc::new(switches),
                        numbers: std::sync::Arc::new(numbers),
                    },
                }
            }
            8 => ControlMsg::TopologyDownAck {
                epoch: Epoch(r.u64()?),
            },
            9 => ControlMsg::ShortAddrRequest { host_uid: r.uid()? },
            10 => ControlMsg::ShortAddrReply {
                host_uid: r.uid()?,
                addr: ShortAddress::from_raw(r.u16()?),
            },
            12 => ControlMsg::TopologyReport {
                epoch: Epoch(r.u64()?),
                seq: r.u64()?,
                report: r.compact_report()?,
            },
            13 => {
                let epoch = Epoch(r.u64()?);
                let root = r.uid()?;
                let report = r.compact_report()?;
                let uids: Vec<Uid> = report.switches.iter().map(|s| s.uid).collect();
                let n = r.u16()? as usize;
                let mut numbers = std::collections::BTreeMap::new();
                for _ in 0..n {
                    let uid = r.uid_ref(&uids)?;
                    let num = r.u16()?;
                    numbers.insert(uid, num);
                }
                ControlMsg::TopologyDown {
                    epoch,
                    global: GlobalTopology {
                        epoch,
                        root,
                        switches: std::sync::Arc::new(report.switches),
                        numbers: std::sync::Arc::new(numbers),
                    },
                }
            }
            11 => {
                let n = r.u8()? as usize;
                let mut route = Vec::with_capacity(n);
                for _ in 0..n {
                    route.push(r.u8()?);
                }
                let hop = r.u8()?;
                let n_back = r.u8()? as usize;
                let mut back_route = Vec::with_capacity(n_back);
                for _ in 0..n_back {
                    back_route.push(r.u8()?);
                }
                let payload = match r.u8()? {
                    0 => SrpPayload::Ping,
                    1 => SrpPayload::Pong {
                        uid: r.uid()?,
                        epoch: Epoch(r.u64()?),
                    },
                    2 => SrpPayload::GetState,
                    3 => SrpPayload::State {
                        uid: r.uid()?,
                        epoch: Epoch(r.u64()?),
                        good_ports: r.u8()?,
                        open: match r.u8()? {
                            0 => false,
                            1 => true,
                            _ => return Err(MsgCodecError::BadValue),
                        },
                    },
                    t => return Err(MsgCodecError::BadTag(t)),
                };
                ControlMsg::Srp {
                    route,
                    hop,
                    back_route,
                    payload,
                }
            }
            t => return Err(MsgCodecError::BadTag(t)),
        };
        r.done()?;
        Ok(msg)
    }

    /// The encoded payload size, used to charge transmission time.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_info() -> SwitchInfo {
        SwitchInfo {
            uid: Uid::new(0xA1),
            proposed_number: 7,
            parent: Uid::new(0xB2),
            parent_port: 3,
            links: vec![
                LinkInfo {
                    local_port: 3,
                    neighbor: Uid::new(0xB2),
                    neighbor_port: 9,
                },
                LinkInfo {
                    local_port: 5,
                    neighbor: Uid::new(0xC3),
                    neighbor_port: 1,
                },
            ],
            host_ports: vec![6, 7, 8],
        }
    }

    fn all_samples() -> Vec<ControlMsg> {
        let pos = TreePosition {
            root: Uid::new(1),
            level: 4,
            parent: Uid::new(2),
            parent_port: 11,
        };
        let mut numbers = std::collections::BTreeMap::new();
        numbers.insert(Uid::new(0xA1), 7u16);
        numbers.insert(Uid::new(0xB2), 2u16);
        vec![
            ControlMsg::Probe {
                seq: 42,
                origin: Uid::new(0xF00),
                origin_port: 4,
            },
            ControlMsg::ProbeReply {
                seq: 42,
                origin: Uid::new(0xF00),
                origin_port: 4,
                responder: Uid::new(0xBAA),
                responder_port: 12,
            },
            ControlMsg::TreePosition {
                epoch: Epoch(9),
                seq: 3,
                from_port: 2,
                pos,
            },
            ControlMsg::TreePositionAck {
                epoch: Epoch(9),
                seq: 3,
                is_parent: true,
                sender_seq: 8,
                sender_from_port: 5,
                sender_pos: pos,
            },
            ControlMsg::TopologyReport {
                epoch: Epoch(9),
                seq: 5,
                report: SubtreeReport {
                    switches: vec![sample_info()],
                },
            },
            ControlMsg::TopologyReportAck {
                epoch: Epoch(9),
                seq: 5,
            },
            ControlMsg::TopologyDown {
                epoch: Epoch(9),
                global: GlobalTopology {
                    epoch: Epoch(9),
                    root: Uid::new(1),
                    switches: std::sync::Arc::new(vec![sample_info()]),
                    numbers: std::sync::Arc::new(numbers),
                },
            },
            ControlMsg::TopologyDownAck { epoch: Epoch(9) },
            ControlMsg::ShortAddrRequest {
                host_uid: Uid::new(77),
            },
            ControlMsg::ShortAddrReply {
                host_uid: Uid::new(77),
                addr: ShortAddress::assigned(3, 4),
            },
            ControlMsg::Srp {
                route: vec![1, 4, 2],
                hop: 1,
                back_route: vec![9],
                payload: SrpPayload::State {
                    uid: Uid::new(5),
                    epoch: Epoch(2),
                    good_ports: 4,
                    open: true,
                },
            },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for msg in all_samples() {
            let bytes = msg.encode();
            let back = ControlMsg::decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn truncation_detected() {
        for msg in all_samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    ControlMsg::decode(&bytes[..cut]).is_err(),
                    "{msg:?} decoded from a {cut}-byte prefix"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = ControlMsg::TopologyDownAck { epoch: Epoch(1) }.encode();
        bytes.push(0);
        assert_eq!(ControlMsg::decode(&bytes), Err(MsgCodecError::BadValue));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(ControlMsg::decode(&[200]), Err(MsgCodecError::BadTag(200)));
        assert_eq!(ControlMsg::decode(&[]), Err(MsgCodecError::Truncated));
    }

    #[test]
    fn wire_size_matches_encoding() {
        for msg in all_samples() {
            assert_eq!(msg.wire_size(), msg.encode().len());
        }
    }

    /// A dense synthetic report: `n` switches, 12 links each, neighbors
    /// chosen in-table except one boundary link per switch.
    fn big_report(n: u64) -> SubtreeReport {
        let switches = (0..n)
            .map(|i| SwitchInfo {
                uid: Uid::new(1000 + i),
                proposed_number: i as SwitchNumber,
                parent: Uid::new(1000 + (i / 2)),
                parent_port: (i % 12) as PortIndex + 1,
                links: (0..12)
                    .map(|p| LinkInfo {
                        local_port: p + 1,
                        neighbor: if p == 0 {
                            Uid::new(5_000_000 + i) // outside the report
                        } else {
                            Uid::new(1000 + ((i + p as u64 * 7) % n))
                        },
                        neighbor_port: 12 - p,
                    })
                    .collect(),
                host_ports: vec![],
            })
            .collect();
        SubtreeReport { switches }
    }

    #[test]
    fn big_reports_roundtrip_compactly() {
        let report = big_report(1024);
        let msg = ControlMsg::TopologyReport {
            epoch: Epoch(3),
            seq: 1,
            report: report.clone(),
        };
        let bytes = msg.encode();
        assert_eq!(bytes[0], 12, "large report should take the compact tag");
        assert_eq!(ControlMsg::decode(&bytes).expect("decode"), msg);

        let numbers = report
            .switches
            .iter()
            .map(|s| (s.uid, s.proposed_number))
            .collect();
        let down = ControlMsg::TopologyDown {
            epoch: Epoch(3),
            global: GlobalTopology {
                epoch: Epoch(3),
                root: report.switches[0].uid,
                switches: std::sync::Arc::new(report.switches.clone()),
                numbers: std::sync::Arc::new(numbers),
            },
        };
        let bytes = down.encode();
        assert_eq!(bytes[0], 13, "large flood should take the compact tag");
        assert_eq!(ControlMsg::decode(&bytes).expect("decode"), down);
        // The point of the exercise: a 1024-switch, degree-12 flood must
        // fit the packet format's 64 KB data field.
        assert!(
            bytes.len() <= 64 * 1024,
            "1024-switch TopologyDown is {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn small_reports_keep_the_classic_bytes() {
        // Networks at or below the threshold — every golden trace, every
        // paper-scale experiment — must encode exactly as before, so
        // transmission and CPU charges (hence timestamps) are unchanged.
        let report = big_report(COMPACT_REPORT_THRESHOLD as u64);
        let msg = ControlMsg::TopologyReport {
            epoch: Epoch(3),
            seq: 1,
            report,
        };
        let bytes = msg.encode();
        assert_eq!(bytes[0], 5, "threshold-sized report keeps the classic tag");
        assert_eq!(ControlMsg::decode(&bytes).expect("decode"), msg);
    }

    #[test]
    fn compact_encoding_beats_classic_per_switch_cost() {
        let report = big_report(1024);
        let classic_estimate: usize = report
            .switches
            .iter()
            .map(|s| 6 + 2 + 6 + 1 + 2 + s.links.len() * 8 + 2 + s.host_ports.len())
            .sum();
        let msg = ControlMsg::TopologyReport {
            epoch: Epoch(3),
            seq: 1,
            report,
        };
        assert!(
            msg.wire_size() < classic_estimate / 2,
            "compact {} vs classic ≈ {}",
            msg.wire_size(),
            classic_estimate
        );
    }

    #[test]
    fn tree_position_is_small() {
        // Tree-position packets are the hot reconfiguration traffic; make
        // sure they stay compact (they fit easily in a minimal packet).
        let msg = ControlMsg::TreePosition {
            epoch: Epoch(1),
            seq: 1,
            from_port: 1,
            pos: TreePosition::myself(Uid::new(1)),
        };
        assert!(msg.wire_size() <= 64, "{} bytes", msg.wire_size());
    }
}

//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the substrate on which every Autonet experiment runs:
//! a virtual clock ([`SimTime`]), a deterministic event queue
//! ([`EventQueue`]), a driver loop ([`Simulator`]), a seeded
//! platform-independent random number generator ([`SimRng`]), and a
//! timestamped circular trace log ([`TraceLog`]) modeled on the in-memory
//! event log that Autopilot kept on every switch.
//!
//! Determinism is the design center. Two events scheduled for the same
//! instant are delivered in the order they were scheduled (a monotonic
//! sequence number breaks ties), and all randomness flows from [`SimRng`],
//! which is a self-contained xoshiro256++ implementation so results do not
//! depend on the platform or on any external crate's algorithm choices.
//!
//! # Examples
//!
//! ```
//! use autonet_sim::{Scheduler, SimDuration, SimTime, Simulator, World};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl World for Counter {
//!     type Event = &'static str;
//!
//!     fn handle(&mut self, _now: SimTime, ev: &'static str, sched: &mut Scheduler<'_, Self::Event>) {
//!         self.fired += 1;
//!         if ev == "again" && self.fired < 3 {
//!             sched.after(SimDuration::from_millis(1), "again");
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(Counter { fired: 0 });
//! sim.schedule_after(SimDuration::ZERO, "again");
//! sim.run();
//! assert_eq!(sim.world().fired, 3);
//! ```

mod calendar;
mod engine;
mod queue;
mod rng;
mod shard;
mod time;
mod trace;

pub use calendar::CalendarQueue;
pub use engine::{Scheduler, Simulator, World};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use shard::{ShardTelemetry, ShardWorld, ShardedSimulator, EXTERNAL_SOURCE};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEntry, TraceLog};

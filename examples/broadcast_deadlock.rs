//! Figure 9 of the companion paper, reproduced at slot level: a broadcast
//! packet deadlocks the network unless its transmitters ignore `stop`
//! until end-of-packet (§6.2, §6.6.6).
//!
//! The scenario: host B streams a long packet B→W→Y→Z→C while host A's
//! broadcast floods down the spanning tree V→{W, X}, X→Z→C. The broadcast
//! wins link Z→C, blocking B's packet; B's packet holds W→Y, blocking the
//! broadcast at W; once W's FIFO passes the stop threshold, flow control
//! freezes V — and with V frozen, the copy headed through X to C stops
//! too, so Z→C never frees. Cycle complete: deadlock.
//!
//! Run with: `cargo run --release --example broadcast_deadlock`

use autonet::switch::datapath::{DatapathConfig, DatapathSim, DpHostId, RunOutcome};
use autonet::switch::{ForwardingEntry, PortSet};
use autonet::wire::ShortAddress;

/// The unicast address we give host C.
const ADDR_C: u16 = 0x0100;

/// Builds the Figure 9 network. Port assignments per switch:
/// V: 1 = host A, 2 = link to W, 3 = link to X
/// W: 1 = host B, 2 = link to V, 3 = link to Y
/// X: 1 = link to V, 2 = link to Z
/// Y: 1 = link to W, 2 = link to Z
/// Z: 1 = host C, 2 = link to X, 3 = link to Y
fn build(config: DatapathConfig) -> (DatapathSim, [DpHostId; 3]) {
    let mut sim = DatapathSim::new(config);
    let v = sim.add_switch();
    let w = sim.add_switch();
    let x = sim.add_switch();
    let y = sim.add_switch();
    let z = sim.add_switch();
    let a = sim.add_host();
    let b = sim.add_host();
    let c = sim.add_host();
    sim.connect_host(a, v, 1, 7);
    sim.connect_host(b, w, 1, 7);
    sim.connect_host(c, z, 1, 7);
    sim.connect_switches(v, 2, w, 2, 7);
    sim.connect_switches(v, 3, x, 1, 7);
    sim.connect_switches(x, 2, z, 2, 7);
    // The W–Y leg is a long fiber so B's packet reaches Z after the
    // broadcast claims the Z→C link — the race in the figure.
    sim.connect_switches(w, 3, y, 1, 129);
    sim.connect_switches(y, 2, z, 3, 7);

    let c_addr = ShortAddress::from_raw(ADDR_C);
    let bcast = ShortAddress::BROADCAST_HOSTS;
    // Unicast route B -> C (up over WY, down YZ, deliver at Z).
    sim.table_mut(w)
        .set(1, c_addr, ForwardingEntry::alternatives(PortSet::single(3)));
    sim.table_mut(y)
        .set(1, c_addr, ForwardingEntry::alternatives(PortSet::single(2)));
    sim.table_mut(z)
        .set(3, c_addr, ForwardingEntry::alternatives(PortSet::single(1)));
    // Broadcast flood from A down the spanning tree.
    sim.table_mut(v).set(
        1,
        bcast,
        ForwardingEntry::simultaneous(PortSet::from_ports([2, 3])),
    );
    sim.table_mut(w).set(
        2,
        bcast,
        ForwardingEntry::simultaneous(PortSet::from_ports([1, 3])),
    );
    sim.table_mut(x)
        .set(1, bcast, ForwardingEntry::simultaneous(PortSet::single(2)));
    sim.table_mut(z)
        .set(2, bcast, ForwardingEntry::simultaneous(PortSet::single(1)));
    // The copy that reaches Y back down the W–Y leg has no further
    // children there; the default discard entry absorbs it.
    (sim, [a, b, c])
}

fn run(ignore_stop: bool) -> (RunOutcome, usize, u64) {
    let config = DatapathConfig {
        broadcast_ignores_stop: ignore_stop,
        ..DatapathConfig::default()
    };
    let (mut sim, [a, b, _c]) = build(config);
    // B's packet to C starts first. It must be longer than the downstream
    // FIFO capacity along Y and Z (~2 x 2 KiB stop thresholds), so that
    // while it waits for Z->C its tail still occupies the W->Y link —
    // exactly the "long packet" of the figure.
    sim.send(b, ShortAddress::from_raw(ADDR_C), 12_000, false);
    // A's broadcast (long enough to cross W's stop threshold) follows
    // immediately.
    sim.send(a, ShortAddress::BROADCAST_HOSTS, 3000, true);
    let outcome = sim.run_until_drained(2_000_000, 8_192);
    (outcome, sim.deliveries().len(), sim.stats().fifo_overflows)
}

fn main() {
    println!("Figure 9 broadcast-deadlock scenario, slot-level simulation\n");

    println!("without the fix (transmitters honor stop during broadcasts):");
    let (outcome, delivered, _) = run(false);
    println!("  outcome: {outcome:?}, deliveries completed: {delivered}");
    assert_eq!(
        outcome,
        RunOutcome::Deadlocked,
        "the paper's deadlock must appear"
    );

    println!("\nwith the fix (ignore stop until end of broadcast packet):");
    let (outcome, delivered, overflows) = run(true);
    println!(
        "  outcome: {outcome:?}, deliveries completed: {delivered}, FIFO overflows: {overflows}"
    );
    assert_eq!(outcome, RunOutcome::Drained);
    assert_eq!(
        overflows, 0,
        "the 4096-entry FIFO absorbs the whole broadcast"
    );
    // B's packet reaches C; the broadcast reaches B and C.
    assert!(delivered >= 3);

    println!("\nconclusion: ignore-stop-until-end + a FIFO sized to hold one");
    println!("complete broadcast packet breaks the cycle, as in §6.6.6.");
}

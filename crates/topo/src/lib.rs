//! Topology construction and analysis for the Autonet reproduction.
//!
//! An Autonet is "switches interconnected by point-to-point links in an
//! arbitrary topology" (companion paper §3.2). This crate provides:
//!
//! - [`Topology`]: the static physical description — switches with 48-bit
//!   UIDs and 13 ports each, switch-to-switch links, and dual-homed hosts;
//! - generators for the families used in the experiments ([`gen`]): lines,
//!   rings, stars, trees, tori (including the SRC 30-switch service
//!   network), hypercubes, and random connected graphs;
//! - graph analysis over a live view of the network ([`NetView`]): BFS
//!   distances, diameter, connected components;
//! - the deadlock checker ([`deadlock`]): builds the channel-dependency
//!   graph of a route set and finds cycles, the formal criterion for
//!   wormhole/cut-through deadlock possibility.

pub mod deadlock;
pub mod gen;

mod analysis;
mod graph;

pub use analysis::{bfs_distances, connected_components, diameter, is_connected};
pub use graph::{
    HostAttachment, HostId, HostSpec, LinkEnd, LinkId, LinkSpec, NetView, PortUse, SwitchId,
    SwitchSpec, Topology, TopologyError, EXTERNAL_PORTS,
};

//! The wires: serialization and propagation, reflection off unterminated
//! cables, hardware status synthesis, and data-plane forwarding.

use autonet_sim::{Scheduler, SimDuration, SimTime};
use autonet_switch::LinkUnitStatus;
use autonet_topo::{HostId, LinkId, NetView, PortUse, SwitchId};
use autonet_wire::{Packet, PortIndex};

use super::events::{Event, NetEvent, NetEventKind, Via};
use super::NetWorld;

pub(super) const HOST_LINK_LATENCY_NS: u64 = 7 * 80; // 100 m coax.
pub(super) const SWITCH_TRANSIT: SimDuration = SimDuration::from_micros(2);

impl NetWorld {
    /// The live physical view: up links and switches.
    pub(super) fn physical_view(&self) -> NetView<'_> {
        let mut view = self.topo.view_all();
        for (l, up) in self.link_up.iter().enumerate() {
            if !up {
                view.fail_link(LinkId(l));
            }
        }
        for (s, up) in self.switches.up.iter().enumerate() {
            if !up {
                view.fail_switch(SwitchId(s));
            }
        }
        view
    }

    pub(super) fn log_event(&mut self, time: SimTime, kind: NetEventKind) {
        self.events.push(NetEvent { time, kind });
    }

    /// Wire time of a packet at the configured link rate.
    fn wire_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(bytes as u64 * 8 * 1_000_000_000 / self.params.link_bps)
    }

    /// Transmits `packet` out of switch `s` port `port`.
    pub(super) fn transmit_from_switch(
        &mut self,
        now: SimTime,
        s: usize,
        port: PortIndex,
        packet: Packet,
        sched: &mut Scheduler<'_, Event>,
    ) {
        match self.topo.port_use(SwitchId(s), port) {
            PortUse::Link(lid) => {
                let spec = self.topo.link(lid).clone();
                if !self.link_up[lid.0] {
                    return;
                }
                // Identify this end by (switch, port) so loopback cables
                // work too.
                let (dir, to, to_port) = if spec.a.switch.0 == s && spec.a.port == port {
                    (0, spec.b.switch.0, spec.b.port)
                } else {
                    (1, spec.a.switch.0, spec.a.port)
                };
                let start = self.link_busy[lid.0][dir].max(now);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.record_stall(start.saturating_since(now));
                }
                let done = start + self.wire_time(packet.wire_len());
                self.link_busy[lid.0][dir] = done;
                let arrive = done + SimDuration::from_nanos(spec.timing.latency_ns());
                sched.at(
                    arrive,
                    Event::SwitchRx {
                        s: to,
                        port: to_port,
                        packet,
                        via: Via::Link(lid.0),
                    },
                );
            }
            PortUse::Host(hid, alt) => {
                let which = usize::from(alt);
                if !self.host_link_up[hid.0][which] {
                    return;
                }
                let start = self.host_link_busy[hid.0][which][1].max(now);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.record_stall(start.saturating_since(now));
                }
                let done = start + self.wire_time(packet.wire_len());
                self.host_link_busy[hid.0][which][1] = done;
                if self.host_powered_off_at[hid.0].is_some() {
                    // The cable ends at an unpowered controller: the signal
                    // reflects and arrives back at this very port (§5.3).
                    let back = done + SimDuration::from_nanos(2 * HOST_LINK_LATENCY_NS);
                    sched.at(
                        back,
                        Event::SwitchRx {
                            s,
                            port,
                            packet,
                            via: Via::HostLink(hid.0, which),
                        },
                    );
                    return;
                }
                let arrive = done + SimDuration::from_nanos(HOST_LINK_LATENCY_NS);
                sched.at(
                    arrive,
                    Event::HostRx {
                        h: hid.0,
                        cport: which,
                        packet,
                        via: Via::HostLink(hid.0, which),
                    },
                );
            }
            PortUse::Free => {
                // An uncabled port reflects its own signal (§5.3): the
                // packet comes straight back.
                sched.after(
                    SimDuration::from_micros(2),
                    Event::SwitchRx {
                        s,
                        port,
                        packet,
                        via: Via::Reflection,
                    },
                );
            }
            PortUse::ControlProcessor => {
                // Port 0 loops to the local control processor.
                sched.after(
                    SimDuration::from_micros(1),
                    Event::SwitchRx {
                        s,
                        port: 0,
                        packet,
                        via: Via::Reflection,
                    },
                );
            }
        }
    }

    /// Transmits `packet` from host `h` controller port `cport`.
    pub(super) fn transmit_from_host(
        &mut self,
        now: SimTime,
        h: usize,
        cport: usize,
        packet: Packet,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let spec = self.topo.host(HostId(h));
        let attach = if cport == 0 {
            Some(spec.primary)
        } else {
            spec.alternate
        };
        let Some(attach) = attach else { return };
        if !self.host_link_up[h][cport] {
            return;
        }
        let start = self.host_link_busy[h][cport][0].max(now);
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.record_stall(start.saturating_since(now));
        }
        let done = start + self.wire_time(packet.wire_len());
        self.host_link_busy[h][cport][0] = done;
        let arrive = done + SimDuration::from_nanos(HOST_LINK_LATENCY_NS);
        sched.at(
            arrive,
            Event::SwitchRx {
                s: attach.switch.0,
                port: attach.port,
                packet,
                via: Via::HostLink(h, cport),
            },
        );
    }

    /// Synthesizes the hardware status bits for one switch port from the
    /// physical state of whatever is cabled there.
    pub(super) fn synthesize_status(
        &self,
        now: SimTime,
        s: usize,
        port: PortIndex,
    ) -> Option<LinkUnitStatus> {
        let mut status = LinkUnitStatus::new();
        status.start_seen = true;
        status.progress_seen = true;
        match self.topo.port_use(SwitchId(s), port) {
            PortUse::ControlProcessor => None,
            PortUse::Free => {
                // Reflection: the port hears its own (switch-style) flow
                // control, so it looks like a clean switch link.
                Some(status)
            }
            PortUse::Link(lid) => {
                let spec = self.topo.link(lid);
                let other = if spec.a.switch.0 == s && spec.a.port == port {
                    spec.b
                } else {
                    spec.a
                };
                if !self.link_up[lid.0] || !self.switches.up[other.switch.0] {
                    // Broken cable or dark far end: code violations.
                    status.bad_code = true;
                    status.start_seen = false;
                    Some(status)
                } else {
                    // The far end sends idhy while it condemns the link
                    // (the pool mirrors the verdict into the dead-port
                    // flags after every Autopilot entry point). Under the
                    // sharded executor the far end may live on another
                    // shard, so the read goes through the barrier-latched
                    // snapshot instead of the live pool.
                    status.idhy_seen = match &self.latched {
                        Some(l) => l.is_dead(other.switch.0, other.port),
                        None => self.switches.nodes.is_dead(other.switch.0, other.port),
                    };
                    Some(status)
                }
            }
            PortUse::Host(hid, alt) => {
                let which = usize::from(alt);
                if let Some(off_at) = self.host_powered_off_at[hid.0] {
                    // A reflecting link: the port hears its own flow
                    // control (looks switch-like) until the noise of the
                    // unterminated cable registers as code violations —
                    // "almost always", per §7; modeled as a detection delay.
                    if now.saturating_since(off_at) > self.params.reflect_detect_delay {
                        status.bad_code = true;
                        status.start_seen = false;
                    } else {
                        status.is_host = false;
                        status.start_seen = true;
                    }
                    Some(status)
                } else if !self.host_link_up[hid.0][which] || !self.hosts.up[hid.0] {
                    status.bad_code = true;
                    status.start_seen = false;
                    Some(status)
                } else if match &self.latched {
                    Some(l) => l.host_active(hid.0) == which,
                    None => self.hosts.ctl[hid.0].active_port() == which,
                } {
                    status.is_host = true;
                    Some(status)
                } else {
                    // The alternate port carries sync only: the constant
                    // BadSyntax signature with no flow-control directives.
                    status.bad_syntax = true;
                    status.is_host = false;
                    Some(status)
                }
            }
        }
    }

    /// Data-plane forwarding of one packet arriving at a switch.
    pub(super) fn forward_data(
        &mut self,
        now: SimTime,
        s: usize,
        in_port: PortIndex,
        packet: Packet,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let entry = self.switches.table[s].lookup(in_port, packet.dst);
        if entry.is_discard() {
            self.stats.data_discarded += 1;
            return;
        }
        if entry.broadcast {
            for port in entry.ports.iter() {
                if port == 0 {
                    continue; // The CP ignores data packets.
                }
                self.transmit_from_switch(now + SWITCH_TRANSIT, s, port, packet.clone(), sched);
            }
        } else {
            // Dynamic alternative choice: the hardware takes the first free
            // port; the packet-level equivalent is the least-busy one.
            let mut best: Option<(SimTime, PortIndex)> = None;
            for port in entry.ports.iter() {
                if port == 0 {
                    // Deliveries to the CP address reach the control
                    // processor; data packets there are ignored, matching
                    // the hardware (the CP just never consumes them).
                    continue;
                }
                let busy = self.port_busy_until(s, port);
                let better = match best {
                    None => true,
                    Some((b, _)) => busy < b,
                };
                if better {
                    best = Some((busy, port));
                }
            }
            match best {
                Some((_, port)) => {
                    self.transmit_from_switch(now + SWITCH_TRANSIT, s, port, packet, sched);
                }
                None => self.stats.data_discarded += 1,
            }
        }
    }

    fn port_busy_until(&self, s: usize, port: PortIndex) -> SimTime {
        match self.topo.port_use(SwitchId(s), port) {
            PortUse::Link(lid) => {
                let spec = self.topo.link(lid);
                let dir = usize::from(!(spec.a.switch.0 == s && spec.a.port == port));
                self.link_busy[lid.0][dir]
            }
            PortUse::Host(hid, alt) => self.host_link_busy[hid.0][usize::from(alt)][1],
            _ => SimTime::MAX,
        }
    }

    /// Whether the physical path a packet used is still intact.
    pub(super) fn via_intact(&self, via: Via) -> bool {
        match via {
            Via::Link(l) => self.link_up[l],
            Via::HostLink(h, w) => self.host_link_up[h][w],
            Via::Reflection => true,
        }
    }
}

// Pinned by: UPDATE_GOLDENS=1 cargo test --release --test worst_case_goldens
// Search seed 24: blackout 19.288s / 47 pairs / hold 3.418s / unroutable 0ns
// Random corpus median blackout: 0ns; 13 evaluations, 0 oracle violations.
(
    Scenario {
        name: "worst-24".into(),
        topo: TopoSpec::Hosted { base: Box::new(TopoSpec::FatTree { arities: vec![8, 2, 4], seed: 99 }), per_switch: 1, seed: 7 },
        seed: 24,
        events: vec![
            FaultEvent { at_ms: 369, op: FaultOp::LinkFlaps { link: 446, half_period_ms: 46, cycles: 2 } },
            FaultEvent { at_ms: 369, op: FaultOp::SwitchDown(232) },
        ],
        settle_ms: 30000,
    },
    19288180037u64,
)

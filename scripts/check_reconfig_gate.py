#!/usr/bin/env python3
"""Critical-path regression gate for E1 (BENCH_reconfig.json).

Compares a freshly generated BENCH_reconfig.json against the committed
baseline (``git show HEAD:BENCH_reconfig.json``), per (preset, topology)
row:

* the dominant critical-path phase must not change — a phase flip means
  the reconfiguration pipeline's bottleneck moved, which is a design
  change that must be made deliberately, not discovered in CI;
* median reconfiguration time must not regress by more than the
  tolerance (simulated time is deterministic, so any drift is a real
  behavior change — the tolerance only absorbs intentional re-baselines
  of nearby presets);
* the ``incremental`` preset must stay strictly faster than ``tuned``
  on the same topology — the acceptance criterion of the incremental
  pipeline.

Rows present only on one side are skipped (new presets land with their
first baseline; removed presets vanish with it).

Usage: check_reconfig_gate.py FRESH [--baseline FILE] [--tolerance PCT]
"""

import argparse
import json
import subprocess
import sys

TOLERANCE_PCT = 10.0


def fail(msg):
    print(f"reconfig gate FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def rows_by_key(doc):
    out = {}
    for row in doc.get("presets", []):
        out[(row.get("preset"), row.get("topology"))] = row
    return out


def load_baseline(path):
    if path is not None:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    proc = subprocess.run(
        ["git", "show", "HEAD:BENCH_reconfig.json"],
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        # No committed baseline yet: nothing to gate against.
        return None
    return json.loads(proc.stdout)


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="freshly generated BENCH_reconfig.json")
    ap.add_argument("--baseline", help="baseline file (default: HEAD's copy)")
    ap.add_argument("--tolerance", type=float, default=TOLERANCE_PCT)
    args = ap.parse_args(argv[1:])

    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)
    baseline = load_baseline(args.baseline)
    if baseline is None:
        print("reconfig gate: no committed baseline, skipping comparison")
        return 0

    fresh_rows = rows_by_key(fresh)
    base_rows = rows_by_key(baseline)
    compared = 0
    for key, new in sorted(fresh_rows.items(), key=str):
        old = base_rows.get(key)
        if old is None:
            print(f"reconfig gate: new row {key}, no baseline — skipped")
            continue
        preset, topo = key
        compared += 1
        old_phase = old.get("dominant_phase")
        new_phase = new.get("dominant_phase")
        if old_phase is not None and new_phase != old_phase:
            fail(
                f"{preset} ({topo}): dominant phase moved "
                f"{old_phase!r} -> {new_phase!r}"
            )
        old_ms = old.get("median_reconfig_ms")
        new_ms = new.get("median_reconfig_ms")
        if isinstance(old_ms, (int, float)) and isinstance(new_ms, (int, float)):
            limit = old_ms * (1.0 + args.tolerance / 100.0)
            if new_ms > limit:
                fail(
                    f"{preset} ({topo}): median reconfig {new_ms:.3f} ms "
                    f"regressed past {old_ms:.3f} ms (+{args.tolerance:.0f}%)"
                )
    if compared == 0:
        fail("no comparable rows between fresh and baseline")

    # The incremental pipeline must keep paying for itself.
    for (preset, topo), row in fresh_rows.items():
        if preset != "incremental":
            continue
        tuned = fresh_rows.get(("tuned", topo))
        if tuned is None:
            continue
        inc_ms = row.get("median_reconfig_ms")
        tuned_ms = tuned.get("median_reconfig_ms")
        if not inc_ms < tuned_ms:
            fail(
                f"incremental ({topo}): {inc_ms:.3f} ms does not beat "
                f"tuned's {tuned_ms:.3f} ms"
            )

    print(f"reconfig gate OK: {compared} rows within {args.tolerance:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

//! Failure-injection fuzzing: random topologies subjected to random
//! sequences of link/switch failures and repairs. After the dust settles
//! the control plane must always be consistent with the physical truth,
//! regardless of what the fault schedule did to it in between.

use autonet::net::{NetParams, Network};
use autonet::sim::{SimDuration, SimRng, SimTime};
use autonet::topo::{connected_components, gen, LinkId, SwitchId};

/// One randomized scenario: build, converge, inject `n_faults` random
/// events (link down/up, switch down/up), settle, verify.
fn scenario(seed: u64, n_faults: usize) {
    let n_switches = 6 + (seed % 7) as usize;
    let extra = (seed % 5) as usize;
    let topo = gen::random_connected(n_switches, extra, seed.wrapping_mul(31));
    let mut net = Network::new(topo, NetParams::tuned(), seed);
    net.run_until_stable(SimTime::from_secs(60))
        .unwrap_or_else(|| panic!("seed {seed}: bring-up failed"));

    let mut rng = SimRng::new(seed ^ 0xF417);
    let n_links = net.topology().num_links();
    let mut link_state = vec![true; n_links];
    let mut switch_state = vec![true; n_switches];
    let mut t = net.now();
    for _ in 0..n_faults {
        t += SimDuration::from_millis(rng.range(1, 400));
        match rng.below(4) {
            0 => {
                let l = rng.index(n_links);
                if link_state[l] {
                    link_state[l] = false;
                    net.schedule_link_down(t, LinkId(l));
                }
            }
            1 => {
                let l = rng.index(n_links);
                if !link_state[l] {
                    link_state[l] = true;
                    net.schedule_link_up(t, LinkId(l));
                }
            }
            2 => {
                // Keep at least half the switches alive.
                let down = switch_state.iter().filter(|&&u| !u).count();
                if down < n_switches / 2 {
                    let s = rng.index(n_switches);
                    if switch_state[s] {
                        switch_state[s] = false;
                        net.schedule_switch_down(t, SwitchId(s));
                    }
                }
            }
            _ => {
                let s = rng.index(n_switches);
                if !switch_state[s] {
                    switch_state[s] = true;
                    net.schedule_switch_up(t, SwitchId(s));
                }
            }
        }
    }
    // Let the barrage land and the network settle. Repairs can earn long
    // skeptic holds when a port relapsed several times, so allow for them.
    net.run_for(t.saturating_since(net.now()) + SimDuration::from_millis(100));
    let done = net.run_until_stable(net.now() + SimDuration::from_secs(300));
    assert!(
        done.is_some(),
        "seed {seed}: network never settled after {n_faults} faults"
    );
    net.check_against_reference()
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    // Explicit partition audit: every physical component has exactly one
    // configuration of its own size.
    let mut view = net.topology().view_all();
    for (l, &up) in link_state.iter().enumerate() {
        if !up {
            view.fail_link(LinkId(l));
        }
    }
    for (s, &up) in switch_state.iter().enumerate() {
        if !up {
            view.fail_switch(SwitchId(s));
        }
    }
    for component in connected_components(&view) {
        for &sid in &component {
            let g = net.autopilot(sid).global().expect("configured");
            assert_eq!(
                g.switches.len(),
                component.len(),
                "seed {seed}: {sid:?} sees the wrong component size"
            );
        }
    }
}

#[test]
fn random_fault_sequences_always_settle_consistently() {
    for seed in 1..=10 {
        scenario(seed, 8);
    }
}

#[test]
fn heavier_fault_barrage() {
    for seed in 100..=103 {
        scenario(seed, 20);
    }
}

//! The §7 "amusing surprise": a powered-off host leaves an unterminated,
//! *reflecting* cable. A reflected broadcast looks like a new broadcast —
//! it climbs the spanning tree, floods down to every host, reflects again,
//! and the network melts into a broadcast storm ("all hosts receiving
//! thousands of broadcast packets per second") until the status sampler
//! counts enough code violations on the reflecting port to classify it
//! broken and drop it from the forwarding tables.
//!
//! Run with: `cargo run --release --example broadcast_storm`

use autonet::host::BROADCAST_UID;
use autonet::net::{NetParams, Network};
use autonet::sim::{SimDuration, SimTime};
use autonet::topo::{gen, HostId};

fn main() {
    // A line of three switches, two dual-homed hosts each.
    let mut topo = gen::line(3, 7);
    gen::add_dual_homed_hosts(&mut topo, 2, 9);
    let n_hosts = topo.num_hosts();
    let mut params = NetParams::tuned();
    // Let the storm rage a little longer before detection, for drama.
    params.reflect_detect_delay = SimDuration::from_millis(60);
    let mut net = Network::new(topo, params, 11);
    net.run_until_stable(SimTime::from_secs(30))
        .expect("converges");
    net.run_for(SimDuration::from_secs(3));

    // Power a host off, cable still plugged in: its port now reflects.
    let victim = HostId(3);
    let off_at = net.now() + SimDuration::from_millis(5);
    net.schedule_host_power_off(off_at, victim);
    println!("host {victim:?} powered off at {off_at}; its links now reflect signals");

    // An innocent host broadcasts one packet shortly after.
    let sender = HostId(0);
    net.schedule_host_send(
        off_at + SimDuration::from_millis(10),
        sender,
        BROADCAST_UID,
        200,
        424242,
    );
    println!("host {sender:?} sends ONE broadcast packet\n");

    // Watch deliveries of that single packet in 20 ms windows.
    let mut last_count = 0usize;
    for window in 0..10 {
        net.run_for(SimDuration::from_millis(20));
        let count = net.deliveries().iter().filter(|d| d.tag == 424242).count();
        let delta = count - last_count;
        last_count = count;
        let t = off_at + SimDuration::from_millis(10 + 20 * (window + 1));
        let bar = "#".repeat((delta / 3).min(60));
        println!(
            "  t+{:>3} ms: {delta:>4} copies delivered this window {bar}",
            10 + 20 * (window + 1)
        );
        let _ = t;
    }
    let total = last_count;
    println!("\none broadcast packet produced {total} deliveries across {n_hosts} hosts — a storm");
    assert!(
        total > n_hosts * 3,
        "the storm should deliver many more copies than one flood's worth"
    );

    // The sampler's BadCode counting eventually condemns the reflecting
    // port, the forwarding tables drop it, and the storm dies.
    net.run_for(SimDuration::from_secs(2));
    let settled = net.deliveries().iter().filter(|d| d.tag == 424242).count();
    net.run_for(SimDuration::from_secs(1));
    let after = net.deliveries().iter().filter(|d| d.tag == 424242).count();
    println!(
        "after the reflecting port is condemned: {} new copies in the last second",
        after - settled
    );
    assert_eq!(after, settled, "the storm must be over");

    // And a fresh broadcast behaves normally again.
    net.schedule_host_send(
        net.now() + SimDuration::from_millis(5),
        sender,
        BROADCAST_UID,
        200,
        555,
    );
    net.run_for(SimDuration::from_secs(1));
    let clean = net.deliveries().iter().filter(|d| d.tag == 555).count();
    println!("a fresh broadcast now delivers exactly {clean} copies (one per live host)");
    println!(
        "\n§7's proposed better fix — direction-tagged links so wrong-way\n\
         packets are discarded in hardware — would prevent the storm rather\n\
         than merely ending it."
    );
}

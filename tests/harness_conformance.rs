//! Conformance between the two simulation backends.
//!
//! The same Autopilot — inside the same `autonet_harness::NodeHarness` —
//! runs over two very different `Environment` implementations: the
//! packet-level transport of [`Network`] (synthesized status bits,
//! abstract links) and the slot-accurate datapath of [`SlotNet`] (real
//! symbols, real FIFOs, status bits latched by link units). If the
//! harness layer is faithful, the control plane must reach the same
//! conclusions about what the network *is* on both: identical
//! classifications for every cabled port, and the same final epoch.
//!
//! Uncabled ports are the one place the substrates legitimately differ:
//! the packet-level model simulates §5.3 reflection (the port hears its
//! own probes and classifies the loop), while the slot-level datapath
//! models silence (the port never leaves Checking). Both keep such ports
//! out of service, which is what the protocol requires.

use autonet::autopilot::PortState;
use autonet::net::{CpuModel, NetParams, Network, PartitionedNetwork, SlotNet};
use autonet::sim::{SimDuration, SimTime};
use autonet::topo::{gen, HostId, LinkId, PortUse, SwitchId, Topology};
use autonet::wire::{LinkTiming, PortIndex, Uid, MAX_PORTS};

/// Two switches joined by one trunk, a single-homed host on each — small
/// enough for the slot-level model, rich enough to exercise the trunk and
/// host classifications on both backends.
fn small_topo() -> Topology {
    let mut t = Topology::new();
    let a = t.add_switch(Uid::new(1)).unwrap();
    let b = t.add_switch(Uid::new(2)).unwrap();
    t.connect(a, b, LinkTiming::coax_100m()).unwrap();
    t.attach_host(Uid::new(100), a, None).unwrap();
    t.attach_host(Uid::new(200), b, None).unwrap();
    t
}

#[test]
fn packet_and_slot_environments_agree() {
    let params = SlotNet::fast_params();

    let mut slot = SlotNet::new(&small_topo(), params);
    slot.boot();
    assert!(
        slot.run_until_converged(2, 4_000_000),
        "slot-level bring-up failed (t = {})",
        slot.now()
    );

    // Same protocol constants for the packet-level run; no boot jitter
    // (the slot-level backend boots everything at t = 0 too) and a
    // control processor scaled to the ~50×-faster protocol cadences, as
    // the slot model's CP also keeps up with them.
    let net_params = NetParams {
        autopilot: params,
        boot_jitter: SimDuration::ZERO,
        cpu: CpuModel {
            per_packet: SimDuration::from_micros(5),
            per_byte: SimDuration::from_nanos(50),
        },
        ..NetParams::tuned()
    };
    let mut pkt = Network::new(small_topo(), net_params, 1);
    assert!(
        pkt.run_until_stable(SimTime::from_secs(10)).is_some(),
        "packet-level bring-up failed"
    );

    let topo = small_topo();
    for s in [SwitchId(0), SwitchId(1)] {
        assert_eq!(
            pkt.autopilot(s).epoch(),
            slot.autopilot(s).epoch(),
            "final epoch at switch {}",
            s.0
        );
        for port in 1..MAX_PORTS as PortIndex {
            let cabled = !matches!(topo.port_use(s, port), PortUse::Free);
            let p = pkt.autopilot(s).port_state(port);
            let l = slot.autopilot(s).port_state(port);
            if cabled {
                assert_eq!(p, l, "switch {} port {port}", s.0);
            } else {
                // Substrates model uncabled ports differently, but both
                // must hold them out of service.
                for (backend, state) in [("packet", p), ("slot", l)] {
                    assert!(
                        state != PortState::SwitchGood && state != PortState::Host,
                        "{backend}: switch {} uncabled port {port} in service as {state:?}",
                        s.0
                    );
                }
            }
        }
        assert_eq!(
            pkt.autopilot(s).good_ports(),
            slot.autopilot(s).good_ports(),
            "in-service port sets at switch {}",
            s.0
        );
    }

    // Sanity: the agreement is about a configured network, not two
    // networks that agree on knowing nothing.
    let link_port = topo.link(LinkId(0)).a.port;
    assert_eq!(
        pkt.autopilot(SwitchId(0)).port_state(link_port),
        PortState::SwitchGood
    );
    let host_port = topo.host(HostId(0)).primary.port;
    assert_eq!(
        pkt.autopilot(SwitchId(0)).port_state(host_port),
        PortState::Host
    );
}

/// Three switches in a ring — redundancy, so a single cable fault never
/// partitions and both backends must keep one network on one epoch.
fn ring3() -> Topology {
    let mut t = Topology::new();
    let a = t.add_switch(Uid::new(1)).unwrap();
    let b = t.add_switch(Uid::new(2)).unwrap();
    let c = t.add_switch(Uid::new(3)).unwrap();
    t.connect(a, b, LinkTiming::coax_100m()).unwrap();
    t.connect(b, c, LinkTiming::coax_100m()).unwrap();
    t.connect(c, a, LinkTiming::coax_100m()).unwrap();
    t
}

/// The ring with a single-homed host on each side of the trunk the fault
/// tests cut — the data-plane view of the same conformance story.
fn ring3_hosts() -> Topology {
    let mut t = ring3();
    t.attach_host(Uid::new(100), SwitchId(0), None).unwrap();
    t.attach_host(Uid::new(200), SwitchId(1), None).unwrap();
    t
}

/// Trunk-port classifications every up switch reports, in a fixed order.
fn trunk_states(
    topo: &Topology,
    state: impl Fn(SwitchId, PortIndex) -> PortState,
) -> Vec<(usize, PortIndex, PortState)> {
    let mut out = Vec::new();
    for s in topo.switch_ids() {
        for (port, l) in topo.links_at(s) {
            if !topo.link(l).is_loopback() {
                out.push((s.0, port, state(s, port)));
            }
        }
    }
    out
}

/// The same cable fault — cut, reconfigure, splice, readmit — must leave
/// both backends with identical trunk classifications at each stage, and
/// the fault must cost each backend at least one epoch. The packet model
/// cuts the abstract link; the slot model drowns both ends in code
/// violations until the samplers condemn them, then goes quiet, exactly
/// as §5.3 hardware would present the fault.
#[test]
fn packet_and_slot_environments_agree_across_link_fault() {
    let params = SlotNet::fast_params();
    let topo = ring3();
    let spec = topo.link(LinkId(0)).clone();

    let mut slot = SlotNet::new(&ring3(), params);
    slot.boot();
    assert!(
        slot.run_until_converged(3, 8_000_000),
        "slot-level bring-up failed (t = {})",
        slot.now()
    );

    let net_params = NetParams {
        autopilot: params,
        boot_jitter: SimDuration::ZERO,
        cpu: CpuModel {
            per_packet: SimDuration::from_micros(5),
            per_byte: SimDuration::from_nanos(50),
        },
        ..NetParams::tuned()
    };
    let mut pkt = Network::new(ring3(), net_params, 1);
    assert!(
        pkt.run_until_stable(SimTime::from_secs(10)).is_some(),
        "packet-level bring-up failed"
    );

    let slot_epoch0 = slot.autopilot(SwitchId(0)).epoch();
    let pkt_epoch0 = pkt.autopilot(SwitchId(0)).epoch();

    // Cut link 0. Give each backend time for its samplers to condemn the
    // ports and the ring to reconfigure around the dead cable, then
    // require quiescence.
    slot.inject_noise(spec.a.switch, spec.a.port, 20_000, 7);
    slot.inject_noise(spec.b.switch, spec.b.port, 20_000, 8);
    slot.run_slots(1_000_000);
    assert!(
        slot.run_until_converged(3, 16_000_000),
        "slot-level reconfiguration after cut failed (t = {})",
        slot.now()
    );
    pkt.schedule_link_down(pkt.now() + SimDuration::from_millis(1), LinkId(0));
    pkt.run_for(SimDuration::from_millis(80));
    assert!(
        pkt.run_until_stable(pkt.now() + SimDuration::from_secs(10))
            .is_some(),
        "packet-level reconfiguration after cut failed"
    );

    for s in topo.switch_ids() {
        assert!(
            pkt.autopilot(s).epoch() > pkt_epoch0,
            "packet: cut cost no epoch at switch {}",
            s.0
        );
        assert!(
            slot.autopilot(s).epoch() > slot_epoch0,
            "slot: cut cost no epoch at switch {}",
            s.0
        );
    }
    assert_eq!(
        trunk_states(&topo, |s, p| pkt.autopilot(s).port_state(p)),
        trunk_states(&topo, |s, p| slot.autopilot(s).port_state(p)),
        "post-cut trunk classifications"
    );
    for (end, backend_pkt, backend_slot) in [
        (
            spec.a,
            pkt.autopilot(spec.a.switch),
            slot.autopilot(spec.a.switch),
        ),
        (
            spec.b,
            pkt.autopilot(spec.b.switch),
            slot.autopilot(spec.b.switch),
        ),
    ] {
        assert_eq!(backend_pkt.port_state(end.port), PortState::Dead);
        assert_eq!(backend_slot.port_state(end.port), PortState::Dead);
    }

    // Splice the cable back. The skeptics must readmit it on both
    // backends, and the ring must settle on a single epoch again.
    let slot_epoch1 = slot.autopilot(SwitchId(0)).epoch();
    let pkt_epoch1 = pkt.autopilot(SwitchId(0)).epoch();
    slot.inject_noise(spec.a.switch, spec.a.port, 0, 7);
    slot.inject_noise(spec.b.switch, spec.b.port, 0, 8);
    slot.run_slots(1_000_000);
    assert!(
        slot.run_until_converged(3, 16_000_000),
        "slot-level readmission failed (t = {})",
        slot.now()
    );
    pkt.schedule_link_up(pkt.now() + SimDuration::from_millis(1), LinkId(0));
    pkt.run_for(SimDuration::from_millis(80));
    assert!(
        pkt.run_until_stable(pkt.now() + SimDuration::from_secs(10))
            .is_some(),
        "packet-level readmission failed"
    );

    assert!(pkt.autopilot(SwitchId(0)).epoch() > pkt_epoch1);
    assert!(slot.autopilot(SwitchId(0)).epoch() > slot_epoch1);
    let healed = trunk_states(&topo, |s, p| pkt.autopilot(s).port_state(p));
    assert_eq!(
        healed,
        trunk_states(&topo, |s, p| slot.autopilot(s).port_state(p)),
        "post-heal trunk classifications"
    );
    assert!(
        healed.iter().all(|&(_, _, st)| st == PortState::SwitchGood),
        "every trunk port back in service: {healed:?}"
    );
    for backend_epochs in [
        topo.switch_ids()
            .map(|s| pkt.autopilot(s).epoch())
            .collect::<Vec<_>>(),
        topo.switch_ids()
            .map(|s| slot.autopilot(s).epoch())
            .collect::<Vec<_>>(),
    ] {
        assert!(
            backend_epochs.windows(2).all(|w| w[0] == w[1]),
            "single final epoch per backend: {backend_epochs:?}"
        );
    }
}

/// Scale-tier conformance on a 16×16 torus: the pooled packet backend
/// under its two executors — the classic single calendar queue
/// ([`Network`]) and the sharded conservative-lookahead loop
/// ([`PartitionedNetwork`]) — must classify every trunk port identically
/// and each settle the whole fabric on one epoch with the same agreed
/// topology, through bring-up and a trunk cut. The executors observe
/// cross-node state at slightly different instants (live reads vs the
/// window latch), so the *count* of reconfigurations bring-up takes —
/// the absolute epoch number — is legitimately schedule-dependent;
/// what must agree is everything the protocol promises: port
/// classifications, openness, per-backend epoch agreement, and the
/// reconstructed topology.
#[test]
#[ignore = "scale tier: run with --release -- --ignored"]
fn pooled_executors_agree_on_16x16_torus() {
    let topo = gen::torus(16, 16, 31);
    let n = topo.num_switches();

    let mut classic = Network::new(topo.clone(), NetParams::scale(), 2);
    classic
        .run_until_stable_every(SimDuration::from_millis(100), SimTime::from_secs(300))
        .expect("classic bring-up converges");
    classic.schedule_link_down(classic.now() + SimDuration::from_millis(10), LinkId(0));
    classic
        .run_until_stable_every(
            SimDuration::from_millis(50),
            classic.now() + SimDuration::from_secs(60),
        )
        .expect("classic reconverges after cut");

    let mut sharded = PartitionedNetwork::new(topo.clone(), NetParams::scale(), 2, 4);
    sharded
        .run_until_stable_every(SimDuration::from_millis(100), SimTime::from_secs(300))
        .expect("sharded bring-up converges");
    sharded.schedule_link_down(sharded.now() + SimDuration::from_millis(10), LinkId(0));
    sharded
        .run_until_stable_every(
            SimDuration::from_millis(50),
            sharded.now() + SimDuration::from_secs(60),
        )
        .expect("sharded reconverges after cut");

    assert_eq!(
        trunk_states(&topo, |s, p| classic.autopilot(s).port_state(p)),
        trunk_states(&topo, |s, p| sharded.autopilot(s).port_state(p)),
        "trunk classifications after cut"
    );
    classic
        .check_against_reference()
        .expect("classic reference");
    assert!(sharded.control_plane_consistent(), "sharded consistency");
    for backend_epochs in [
        (0..n)
            .map(|s| {
                let ap = classic.autopilot(SwitchId(s));
                assert!(ap.is_open(), "classic: switch {s} reopens");
                ap.epoch()
            })
            .collect::<Vec<_>>(),
        (0..n)
            .map(|s| {
                let ap = sharded.autopilot(SwitchId(s));
                assert!(ap.is_open(), "sharded: switch {s} reopens");
                ap.epoch()
            })
            .collect::<Vec<_>>(),
    ] {
        assert!(
            backend_epochs.windows(2).all(|w| w[0] == w[1]),
            "one network-wide epoch per backend: {backend_epochs:?}"
        );
    }
    // Both executors reconstruct the same network: same root, same
    // membership, and (from the classification equality above) the same
    // link set.
    let (cg, sg) = (
        classic.autopilot(SwitchId(0)).global().expect("classic"),
        sharded.autopilot(SwitchId(0)).global().expect("sharded"),
    );
    assert_eq!(cg.root, sg.root, "agreed root");
    assert_eq!(cg.switches.len(), sg.switches.len(), "agreed membership");
    assert_eq!(cg.switches.len(), n, "full fabric");
}

/// The slot-level oracle at its largest feasible size: a 4×4 torus (the
/// slot model walks every link unit every 80 ns slot, so 256 switches is
/// out of reach — the packet-pooled executors cover that scale above).
/// Both backends must classify every trunk port identically and land on
/// the same final epoch.
#[test]
#[ignore = "scale tier: run with --release -- --ignored"]
fn packet_and_slot_environments_agree_on_4x4_torus() {
    let params = SlotNet::fast_params();
    let topo = gen::torus(4, 4, 31);
    let n = topo.num_switches();

    let mut slot = SlotNet::new(&topo, params);
    slot.boot();
    assert!(
        slot.run_until_converged(n, 8_000_000),
        "slot-level bring-up failed (t = {})",
        slot.now()
    );

    let net_params = NetParams {
        autopilot: params,
        boot_jitter: SimDuration::ZERO,
        cpu: CpuModel {
            per_packet: SimDuration::from_micros(5),
            per_byte: SimDuration::from_nanos(50),
        },
        ..NetParams::tuned()
    };
    let mut pkt = Network::new(topo.clone(), net_params, 1);
    assert!(
        pkt.run_until_stable(SimTime::from_secs(10)).is_some(),
        "packet-level bring-up failed"
    );

    assert_eq!(
        trunk_states(&topo, |s, p| pkt.autopilot(s).port_state(p)),
        trunk_states(&topo, |s, p| slot.autopilot(s).port_state(p)),
        "trunk classifications"
    );
    for s in topo.switch_ids() {
        assert_eq!(
            pkt.autopilot(s).epoch(),
            slot.autopilot(s).epoch(),
            "final epoch at switch {}",
            s.0
        );
    }
}

/// The same cable fault as seen by the data plane: probe flows between
/// the two hosts must record a blackout window on *both* backends,
/// starting at the fault and attributed to the reconfiguration it
/// triggered — and, aligned on the fault instant, the packet-level and
/// slot-level windows must overlap. The absolute durations legitimately
/// differ (a sampler condemning a noisy cable is slower than an abstract
/// link dying), but both backends must agree that the cut briefly
/// darkened the same pairs and that service came back.
#[test]
fn packet_and_slot_blackouts_overlap_across_link_fault() {
    use autonet::trace::{InterruptionConfig, InterruptionReport, Timeline};

    let params = SlotNet::fast_params();
    let topo = ring3_hosts();
    let spec = topo.link(LinkId(0)).clone();
    let interval = SimDuration::from_micros(100);
    let pairs = [(HostId(0), HostId(1)), (HostId(1), HostId(0))];
    let report = |probe_pairs: Vec<(usize, usize)>,
                  records: &[autonet::net::ProbeRecord],
                  trace: &[autonet::trace::TraceRecord],
                  horizon: SimTime| {
        InterruptionReport::build(
            &probe_pairs,
            records,
            &Timeline::build(trace),
            horizon,
            InterruptionConfig {
                interval,
                min_run: 2,
            },
        )
    };

    // Slot backend: steady probed baseline, then noise kills the trunk.
    let mut slot = SlotNet::new(&ring3_hosts(), params);
    slot.boot();
    assert!(
        slot.run_until_converged(3, 8_000_000),
        "slot-level bring-up failed (t = {})",
        slot.now()
    );
    slot.start_probes(&pairs, interval);
    slot.run_slots(250_000);
    let slot_fault = slot.now();
    slot.inject_noise(spec.a.switch, spec.a.port, 20_000, 7);
    slot.inject_noise(spec.b.switch, spec.b.port, 20_000, 8);
    slot.run_slots(1_000_000);
    assert!(
        slot.run_until_converged(3, 16_000_000),
        "slot-level reconfiguration after cut failed (t = {})",
        slot.now()
    );
    slot.run_slots(500_000);
    let slot_report = report(
        slot.probe_pairs(),
        slot.probe_records(),
        slot.trace_log().records(),
        slot.now(),
    );

    // Packet backend: same protocol constants (see above), same fault.
    let net_params = NetParams {
        autopilot: params,
        boot_jitter: SimDuration::ZERO,
        cpu: CpuModel {
            per_packet: SimDuration::from_micros(5),
            per_byte: SimDuration::from_nanos(50),
        },
        ..NetParams::tuned()
    };
    let mut pkt = Network::new(ring3_hosts(), net_params, 1);
    assert!(
        pkt.run_until_stable(SimTime::from_secs(10)).is_some(),
        "packet-level bring-up failed"
    );
    // The default host driver needs ~600 ms after boot to learn its own
    // short address (the t=0 liveness check goes unanswered, then the
    // 500 ms reply timeout, then vigorous probing); probe only once the
    // host layer is steady so the one blackout is the reconfiguration's.
    pkt.run_for(SimDuration::from_secs(3));
    pkt.start_probes(&pairs, interval);
    pkt.run_for(SimDuration::from_millis(20));
    let pkt_fault = pkt.now() + SimDuration::from_millis(1);
    pkt.schedule_link_down(pkt_fault, LinkId(0));
    pkt.run_for(SimDuration::from_millis(80));
    assert!(
        pkt.run_until_stable(pkt.now() + SimDuration::from_secs(10))
            .is_some(),
        "packet-level reconfiguration after cut failed"
    );
    pkt.run_for(SimDuration::from_millis(100));
    let pkt_report = report(
        pkt.probe_pairs(),
        pkt.probe_records(),
        pkt.trace_log().records(),
        pkt.now(),
    );

    // Both directions cross the cut trunk; both backends must blackout
    // both, explain the window, restore service — and overlap in time
    // once aligned on the fault.
    for pair in 0..pairs.len() {
        let biggest = |r: &InterruptionReport, fault: SimTime, backend: &str| {
            assert!(
                r.pairs[pair].delivered > 0,
                "{backend}: pair {pair} never delivered a probe"
            );
            let w = r.pairs[pair]
                .windows
                .iter()
                .max_by_key(|w| w.end.saturating_since(w.start))
                .unwrap_or_else(|| panic!("{backend}: pair {pair} recorded no blackout"));
            assert!(w.restored, "{backend}: pair {pair} never recovered: {w:?}");
            assert!(
                w.epoch.is_some(),
                "{backend}: pair {pair} blackout unexplained: {w:?}"
            );
            (
                w.start.saturating_since(fault),
                w.end.saturating_since(fault),
            )
        };
        let (ps, pe) = biggest(&pkt_report, pkt_fault, "packet");
        let (ss, se) = biggest(&slot_report, slot_fault, "slot");
        assert!(
            ps.max(ss) < pe.min(se),
            "pair {pair}: fault-aligned windows disjoint; packet {ps}..{pe}, slot {ss}..{se}"
        );
    }
}

/// The scenario engine end to end over both substrates: a *pinned
/// adversarial schedule* — the worst-case search's favorite move, two
/// simultaneous trunk cuts in one slot — must darken probe flows on the
/// packet-level and the slot-level backend alike, and the fault-aligned
/// blackout windows must overlap. This is the conformance guarantee the
/// worst-case goldens lean on: a champion found on one substrate
/// describes real damage on the other, not a modeling artifact.
#[test]
fn pinned_adversarial_schedule_blackouts_overlap_on_both_substrates() {
    use autonet::trace::InterruptionReport;
    use autonet_check::{
        run_packet, run_slot, FaultEvent, FaultOp, OracleConfig, Scenario, TopoSpec,
    };

    let params = SlotNet::fast_params();
    // Two cuts in the same millisecond slot: the base graph (3 switches,
    // 4 trunks at this seed) is a triangle plus a parallel 0-2 cable, and
    // links 0 and 3 are exactly the two parallels — losing both redundant
    // cables at once forces a reconfiguration while the trunk graph stays
    // connected, so every switch re-converges on both backends (the
    // slot-level quiescence check needs all of them in one epoch) and the
    // blackout is the reconfiguration's, not a partition's. Late enough
    // that the packet-level host driver is past its address-learning
    // phase (see above).
    let scenario = Scenario {
        name: "adversarial-double-cut".into(),
        topo: TopoSpec::Hosted {
            base: Box::new(TopoSpec::RandomConnected {
                n: 3,
                extra: 2,
                seed: 2,
            }),
            per_switch: 1,
            seed: 5,
        },
        seed: 7,
        events: vec![
            FaultEvent {
                at_ms: 800,
                op: FaultOp::LinkDown(0),
            },
            FaultEvent {
                at_ms: 800,
                op: FaultOp::LinkDown(3),
            },
        ],
        settle_ms: 8_000,
    };
    let mut cfg = OracleConfig::from_params(&params);
    // Slot-scale outages need sub-millisecond probes to register.
    cfg.probe_interval = SimDuration::from_micros(100);
    cfg.step_ms = 5;

    let slot_out = run_slot(&scenario, params, &cfg);
    let net_params = NetParams {
        autopilot: params,
        boot_jitter: SimDuration::ZERO,
        cpu: CpuModel {
            per_packet: SimDuration::from_micros(5),
            per_byte: SimDuration::from_nanos(50),
        },
        ..NetParams::tuned()
    };
    let pkt_out = run_packet(&scenario, &net_params, &cfg);

    // Windows that overlap the fault instant (origin-aligned), as
    // (start, end) relative to the fault.
    let fault_windows = |report: &InterruptionReport,
                         fault: SimTime,
                         backend: &str|
     -> Vec<(usize, SimDuration, SimDuration)> {
        let grace = SimDuration::from_millis(500);
        let out: Vec<(usize, SimDuration, SimDuration)> = report
            .pairs
            .iter()
            .enumerate()
            .flat_map(|(i, p)| {
                p.windows
                    .iter()
                    .filter(|w| w.end >= fault && w.start <= fault + grace)
                    .map(move |w| {
                        (
                            i,
                            w.start.saturating_since(fault),
                            w.end.saturating_since(fault),
                        )
                    })
            })
            .collect();
        assert!(
            !out.is_empty(),
            "{backend}: double cut at {fault} darkened no probed pair"
        );
        out
    };
    let slot_report = slot_out.interruption.as_ref().expect("slot probes ran");
    let pkt_report = pkt_out.interruption.as_ref().expect("packet probes ran");
    let slot_fault = slot_out.origin + SimDuration::from_millis(800);
    let pkt_fault = pkt_out.origin + SimDuration::from_millis(800);
    let slot_ws = fault_windows(slot_report, slot_fault, "slot");
    let pkt_ws = fault_windows(pkt_report, pkt_fault, "packet");

    // Some pair must be darkened by the fault on BOTH substrates, with
    // fault-aligned windows that actually intersect.
    let overlapping = pkt_ws.iter().any(|&(pp, ps, pe)| {
        slot_ws
            .iter()
            .any(|&(sp, ss, se)| pp == sp && ps.max(ss) < pe.min(se))
    });
    assert!(
        overlapping,
        "no pair's fault-aligned blackout overlaps across substrates;\n  packet: {pkt_ws:?}\n  slot: {slot_ws:?}"
    );
}

//! Failure-injection fuzzing: random topologies subjected to random fault
//! schedules (link down/up, switch down/up, flaps), now driven through the
//! `autonet_check` scenario engine so every run is watched by the full
//! oracle suite — epoch monotonicity, forwarding-table cycle freedom,
//! skeptic hysteresis bounds, per-component quiescence agreement, the
//! reference-topology audit — rather than a single end-of-run check.
//!
//! When an oracle fires, the failing schedule is shrunk and the panic
//! message carries a copy-pasteable `#[test]` that reproduces the exact
//! violation: the CI log is the regression test.

use autonet::net::NetParams;
use autonet_check::{packet_reproducer, random_scenario, run_packet, OracleConfig};

/// Runs one generated campaign; on violation, shrinks and panics with the
/// self-contained reproducer.
fn fuzz_campaign(seed: u64, n_events: usize) {
    let params = NetParams::tuned();
    let cfg = OracleConfig::from_params(&params.autopilot);
    let scenario = random_scenario(seed, n_events);
    let outcome = run_packet(&scenario, &params, &cfg);
    if !outcome.passed() {
        let rep = packet_reproducer(&scenario, &params, &cfg).expect("outcome had a violation");
        panic!(
            "campaign {} (seed {seed}) violated an invariant; minimal reproducer:\n\n{}",
            scenario.name,
            rep.snippet(
                "let params = autonet::net::NetParams::tuned();\n    \
                 let cfg = OracleConfig::from_params(&params.autopilot);",
                "run_packet(&scenario, &params, &cfg)",
            )
        );
    }
    assert!(
        outcome.quiescences >= 2,
        "seed {seed}: campaign must reach initial and final quiescence"
    );
}

#[test]
fn random_fault_sequences_always_settle_consistently() {
    for seed in 1..=10 {
        fuzz_campaign(seed, 8);
    }
}

#[test]
fn heavier_fault_barrage() {
    for seed in 100..=103 {
        fuzz_campaign(seed, 20);
    }
}

//! E22 — sim-kernel scale: 256–1024-switch data centers (ROADMAP).
//!
//! The paper ran 31 switches; modern reproductions want thousands. This
//! bench locks in the kernel's scaling trajectory: for fat-tree and
//! expander topologies at 256, 576 and 1024 switches it brings the
//! network up from cold, cuts a core trunk, and reports wall-clock cost,
//! kernel throughput (events/sec) and the wall-clock price of one
//! simulated second. The acceptance bar: the 1024-switch fat-tree
//! trunk-cut reconfiguration completes in under 10 s of wall clock.
//!
//! Each row is measured twice:
//!
//! 1. a **perf pass** — the untraced scale preset on the single-shard
//!    kernel, exactly the configuration the committed trajectory (and
//!    the acceptance bar) was recorded under;
//! 2. a **profile pass** — the same scenario through
//!    [`PartitionedNetwork`] with tracing and shard telemetry on, which
//!    answers *where the wall time goes*: barrier-wait fraction,
//!    load-imbalance index, the route-cache wall split, per-shard
//!    execution profiles, and (for the flagship row) the causal span
//!    tree exported as a Perfetto-loadable Chrome trace under
//!    `artifacts/`. The profile pass's own wall cost is reported as
//!    `profile_wall_s` so the price of observation stays visible.
//!
//! `SCALE_SMOKE=1` runs only the 256-switch rows (the CI smoke tier).

use autonet_bench::{print_table, write_artifact, write_bench_json};
use autonet_core::RouteCacheStats;
use autonet_net::{NetParams, Network, PartitionedNetwork};
use autonet_sim::{ShardTelemetry, SimDuration, SimTime};
use autonet_topo::{gen, LinkId, Topology};
use autonet_trace::SpanTree;
use std::time::Instant;

struct Row {
    name: String,
    switches: usize,
    links: usize,
    partitions: usize,
    bring_sim: SimDuration,
    bring_wall: f64,
    cut_sim: SimDuration,
    cut_wall: f64,
    events: u64,
    events_per_sec: f64,
    wall_per_sim_sec: f64,
    // Attribution columns from the profile pass.
    profile_wall: f64,
    profile_events: u64,
    barrier_wait_frac: f64,
    load_imbalance: f64,
    barrier_wait_p50: SimDuration,
    barrier_wait_p99: SimDuration,
    barrier_wait_p999: SimDuration,
    route_cache: Option<RouteCacheStats>,
    shards: Vec<ShardTelemetry>,
    trace_path: Option<std::path::PathBuf>,
}

/// How many event-loop shards the profile pass runs with: the machine's
/// parallelism, clamped to [2, 8] so telemetry always exercises the
/// threaded path and huge hosts don't shard a 256-switch world to dust.
fn partitions() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// Perf pass then profile pass over one topology. When `trace_to` is
/// set, the profile pass exports its causal span tree in Chrome Trace
/// Event Format under `artifacts/` for Perfetto.
fn measure(name: &str, topo: Topology, trace_to: Option<&str>) -> Option<Row> {
    let switches = topo.num_switches();
    let links = topo.num_links();
    let nparts = partitions();

    // Perf pass: the committed-trajectory configuration, untouched.
    let mut net = Network::new(topo.clone(), NetParams::scale(), 2);
    let wall = Instant::now();
    net.run_until_stable_every(SimDuration::from_millis(100), SimTime::from_secs(300))?;
    let bring_wall = wall.elapsed().as_secs_f64();
    let bring_sim = SimDuration::from_nanos(net.now().as_nanos());

    net.schedule_link_down(net.now() + SimDuration::from_millis(10), LinkId(0));
    let cut_from = net.now();
    let wall = Instant::now();
    net.run_until_stable_every(
        SimDuration::from_millis(50),
        net.now() + SimDuration::from_secs(60),
    )?;
    let cut_wall = wall.elapsed().as_secs_f64();
    let cut_sim = net.now().saturating_since(cut_from);
    let events = net.events_processed();
    let total_wall = bring_wall + cut_wall;
    let total_sim = net.now().as_nanos() as f64 / 1e9;
    drop(net);

    // Profile pass: same scenario, partitioned kernel, tracing and shard
    // telemetry on. The scale preset disables tracing; the profile pass
    // pays for it on purpose — attribution is the whole point.
    let params = NetParams {
        tracing: true,
        ..NetParams::scale()
    };
    let mut prof = PartitionedNetwork::new(topo, params, 2, nparts);
    let wall = Instant::now();
    prof.run_until_stable_every(SimDuration::from_millis(100), SimTime::from_secs(300))?;
    prof.schedule_link_down(prof.now() + SimDuration::from_millis(10), LinkId(0));
    prof.run_until_stable_every(
        SimDuration::from_millis(50),
        prof.now() + SimDuration::from_secs(60),
    )?;
    let profile_wall = wall.elapsed().as_secs_f64();

    let shards = prof.shard_telemetry().unwrap_or_default();
    let metrics = prof.kernel_metrics();
    let q = |q: f64| {
        metrics
            .as_ref()
            .and_then(|m| m.histogram("kernel.shard_barrier_wait"))
            .map(|h| h.quantile_upper_bound(q))
            .unwrap_or(SimDuration::ZERO)
    };

    let trace_path = trace_to.map(|rel| {
        let records = prof.merged_trace_records();
        let timeline = autonet_trace::Timeline::build(&records);
        let tree = SpanTree::build(&timeline, None);
        let path = write_artifact(rel, &tree.to_chrome_trace());
        println!(
            "  {name}: span trace ({} epochs) -> {}",
            tree.epochs.len(),
            path.display()
        );
        path
    });

    Some(Row {
        name: name.to_string(),
        switches,
        links,
        partitions: nparts,
        bring_sim,
        bring_wall,
        cut_sim,
        cut_wall,
        events,
        events_per_sec: events as f64 / total_wall,
        wall_per_sim_sec: total_wall / total_sim,
        profile_wall,
        profile_events: prof.events_processed(),
        barrier_wait_frac: prof.barrier_wait_fraction().unwrap_or(0.0),
        load_imbalance: prof.load_imbalance().unwrap_or(1.0),
        barrier_wait_p50: q(0.50),
        barrier_wait_p99: q(0.99),
        barrier_wait_p999: q(0.999),
        route_cache: prof.route_cache_stats(),
        shards,
        trace_path,
    })
}

fn ns_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn shard_json(t: &ShardTelemetry) -> String {
    format!(
        "{{ \"events\": {}, \"windows\": {}, \"busy_windows\": {}, \
         \"work_ms\": {:.3}, \"barrier_wait_ms\": {:.3}, \
         \"mailbox_in\": {}, \"mailbox_out\": {}, \"utilization\": {:.4} }}",
        t.events,
        t.windows,
        t.busy_windows,
        ns_ms(t.work_ns),
        ns_ms(t.barrier_wait_ns),
        t.mailbox_in,
        t.mailbox_out,
        t.utilization(),
    )
}

fn route_cache_json(rc: &RouteCacheStats) -> String {
    format!(
        "{{ \"builds\": {}, \"served_memo\": {}, \"delta_reused\": {}, \
         \"synthesized\": {}, \"unroutable\": {}, \
         \"build_wall_ms\": {:.3}, \"serve_wall_ms\": {:.3}, \
         \"delta_wall_ms\": {:.3} }}",
        rc.builds,
        rc.served_memo,
        rc.delta_reused,
        rc.synthesized,
        rc.unroutable,
        ns_ms(rc.build_wall_ns),
        ns_ms(rc.serve_wall_ns),
        ns_ms(rc.delta_wall_ns),
    )
}

fn main() {
    let smoke = std::env::var("SCALE_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    println!(
        "E22: sim-kernel scale (scale preset; profile pass: {} partitions + tracing{})",
        partitions(),
        if smoke { ", smoke tier" } else { "" }
    );

    // The three fat-tree rows (pods x aggregation x core) and matched
    // expander graphs at the same switch counts. The flagship fat-tree
    // of each tier exports its causal span trace for Perfetto.
    let flagship = if smoke {
        "fat_tree 256"
    } else {
        "fat_tree 1024"
    };
    let mut cases: Vec<(String, Topology)> = vec![
        ("fat_tree 256".into(), gen::fat_tree(&[8, 2, 4], 99)),
        ("expander 256".into(), gen::expander(256, 4, 99)),
    ];
    if !smoke {
        cases.push(("fat_tree 576".into(), gen::fat_tree(&[8, 3, 6], 99)));
        cases.push(("expander 576".into(), gen::expander(576, 4, 99)));
        cases.push(("fat_tree 1024".into(), gen::fat_tree(&[8, 4, 8], 99)));
        cases.push(("expander 1024".into(), gen::expander(1024, 4, 99)));
    }

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for (name, topo) in cases {
        let n = topo.num_switches();
        let trace_to =
            (name == flagship).then(|| format!("e22_{}.trace.json", name.replace(' ', "_")));
        match measure(&name, topo, trace_to.as_deref()) {
            Some(row) => {
                table.push(vec![
                    row.name.clone(),
                    row.switches.to_string(),
                    row.links.to_string(),
                    format!("{:.1}", row.bring_wall),
                    format!("{:.1}", row.cut_wall),
                    format!("{:.0}k", row.events_per_sec / 1e3),
                    format!("{:.1}%", row.barrier_wait_frac * 100.0),
                    format!("{:.2}", row.load_imbalance),
                ]);
                rows.push(row);
            }
            None => println!("  {name} ({n} switches): DID NOT CONVERGE"),
        }
    }
    print_table(
        "E22: bring-up + trunk-cut cost by topology",
        &[
            "topology",
            "switches",
            "links",
            "bring-up wall (s)",
            "cut wall (s)",
            "events/s",
            "barrier wait",
            "imbalance",
        ],
        &table,
    );

    let json: Vec<String> = rows
        .iter()
        .map(|r| {
            let shards: Vec<String> = r.shards.iter().map(shard_json).collect();
            format!(
                "    {{ \"topology\": \"{}\", \"switches\": {}, \"links\": {}, \
                 \"partitions\": {}, \
                 \"bringup_sim_ms\": {:.3}, \"bringup_wall_s\": {:.3}, \
                 \"cut_sim_ms\": {:.3}, \"cut_wall_s\": {:.3}, \
                 \"events\": {}, \"events_per_sec\": {:.0}, \
                 \"wall_per_sim_sec\": {:.3}, \
                 \"profile_wall_s\": {:.3}, \"profile_events\": {}, \
                 \"barrier_wait_frac\": {:.4}, \"load_imbalance\": {:.4}, \
                 \"barrier_wait_p50_ms\": {:.3}, \"barrier_wait_p99_ms\": {:.3}, \
                 \"barrier_wait_p999_ms\": {:.3}, \
                 \"route_cache\": {}, \
                 \"shards\": [{}] }}",
                r.name,
                r.switches,
                r.links,
                r.partitions,
                r.bring_sim.as_millis_f64(),
                r.bring_wall,
                r.cut_sim.as_millis_f64(),
                r.cut_wall,
                r.events,
                r.events_per_sec,
                r.wall_per_sim_sec,
                r.profile_wall,
                r.profile_events,
                r.barrier_wait_frac,
                r.load_imbalance,
                r.barrier_wait_p50.as_millis_f64(),
                r.barrier_wait_p99.as_millis_f64(),
                r.barrier_wait_p999.as_millis_f64(),
                r.route_cache
                    .as_ref()
                    .map(route_cache_json)
                    .unwrap_or_else(|| "null".to_string()),
                shards.join(", "),
            )
        })
        .collect();
    let body = format!(
        "{{\n  \"experiment\": \"scale\",\n  \"preset\": \"scale\",\n  \
         \"smoke\": {},\n  \"topologies\": [\n{}\n  ]\n}}\n",
        smoke,
        json.join(",\n")
    );
    // The smoke tier writes its own artifact so a CI smoke run never
    // clobbers the committed full trajectory point.
    let path = write_bench_json(if smoke { "scale_smoke" } else { "scale" }, &body);
    println!("wrote {}", path.display());

    // The acceptance bar from the roadmap: a 1024-switch fat-tree heals a
    // core trunk cut in under 10 s of wall clock (perf pass — observation
    // cost is accounted separately in profile_wall_s).
    if let Some(big) = rows.iter().find(|r| r.name == "fat_tree 1024") {
        assert!(
            big.cut_wall < 10.0,
            "1024-switch trunk-cut reconfiguration took {:.1} s wall (bar: 10 s)",
            big.cut_wall
        );
        println!(
            "acceptance: 1024-switch cut healed in {:.1} s wall (< 10 s)",
            big.cut_wall
        );
    }
    // The flagship row must have produced a Perfetto-loadable trace.
    if let Some(f) = rows.iter().find(|r| r.name == flagship) {
        assert!(
            f.trace_path.as_ref().is_some_and(|p| p.exists()),
            "flagship row {flagship} did not emit its span trace"
        );
    }
}

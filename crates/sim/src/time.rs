//! Virtual time for the simulation.
//!
//! Time is kept in integer nanoseconds. The finest-grained model in this
//! workspace is the slot-level datapath simulation, whose natural unit is the
//! 80 ns Autonet byte slot, so nanoseconds give comfortable headroom on both
//! ends: a u64 nanosecond clock runs for over 500 simulated years.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the span from `earlier` to `self`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns `self + dur`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, dur: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(dur.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not representable in a u64 nanosecond
    /// count.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs <= u64::MAX as f64 / 1e9,
            "duration out of range: {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `self * n`, saturating on overflow.
    pub fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;

    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

/// Formats a nanosecond count with a human-scaled unit.
fn format_nanos(nanos: u64) -> String {
    if nanos == u64::MAX {
        "inf".to_string()
    } else if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_ops_do_not_wrap() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
    }

    #[test]
    fn fractional_conversions() {
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn duration_division_counts_periods() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d / SimDuration::from_millis(3), 3);
        assert_eq!(d / 2, SimDuration::from_millis(5));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimTime::from_nanos(500).to_string(), "500ns");
        assert_eq!(SimTime::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimTime::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimTime::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    #[should_panic(expected = "duration out of range")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}

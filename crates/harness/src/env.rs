//! The substrate contract an Autopilot runs over.

use autonet_core::{ControlMsg, Epoch, Event};
use autonet_sim::SimTime;
use autonet_switch::{ForwardingTable, LinkUnitStatus};
use autonet_wire::PortIndex;

/// What a backend must provide to host one Autopilot.
///
/// An implementation is the glue between the pure control program and one
/// switch's worth of substrate — simulated links and hardware here, real
/// link units on a real control processor in principle. Implementations
/// are typically short-lived borrow views constructed per event (see
/// `autonet-net`), so every method takes `&mut self`.
///
/// The harness guarantees it only calls these methods from inside a
/// [`NodeHarness`](crate::NodeHarness) entry point, with `now` equal to
/// the time passed to that entry point.
pub trait Environment {
    /// Transmits a control message out of `port` (already typed and
    /// one-hop addressed by [`control_packet`](crate::control_packet) if
    /// the substrate wants wire bytes).
    fn send(&mut self, now: SimTime, port: PortIndex, msg: &ControlMsg);

    /// Loads a complete forwarding table into the switch hardware.
    fn load_table(&mut self, now: SimTime, table: ForwardingTable);

    /// Reads one port's latched hardware status bits, or `None` for ports
    /// the sampler must skip (e.g. the control-processor loopback).
    fn read_status(&mut self, now: SimTime, port: PortIndex) -> Option<LinkUnitStatus>;

    /// Tells the substrate whether a port is condemned, so its link unit
    /// sends `idhy` in place of flow control (and the far end can learn
    /// the link is out of service). Called after every status sample with
    /// the port's current verdict; backends with no such hardware hook
    /// keep the default no-op.
    fn set_port_dead(&mut self, _port: PortIndex, _dead: bool) {}

    /// Host traffic re-enabled: a reconfiguration completed at `epoch`.
    fn network_opened(&mut self, _now: SimTime, _epoch: Epoch) {}

    /// Host traffic stopped: a reconfiguration began.
    fn network_closed(&mut self, _now: SimTime) {}

    /// One chance per status-sampling round to sample data-plane
    /// telemetry (queue depths, stall time, link utilization) on the
    /// harness cadence. Called at the end of every sampling round with
    /// `is_root` reflecting whether this node's Autopilot currently
    /// believes itself the root of the agreed topology — the node whose
    /// links the up\*/down\* routes concentrate on (the E5 root-hotspot
    /// effect). Backends without datapath telemetry keep the default
    /// no-op.
    fn sample_datapath(&mut self, _now: SimTime, _is_root: bool) {}

    /// One typed event from this node's Autopilot trace ring, forwarded
    /// by the harness right after the entry point that produced it.
    /// Backends that maintain a network-wide event spine (see
    /// `autonet-trace`) append it there with the node attributed; the
    /// default drops it.
    fn trace(&mut self, _time: SimTime, _event: &Event) {}
}

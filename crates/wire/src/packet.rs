//! The Autonet packet format and byte codec.
//!
//! From companion paper §6.8, an Autonet packet is:
//!
//! | bytes  | field |
//! |--------|-------|
//! | 2      | destination short address |
//! | 2      | source short address |
//! | 2      | Autonet type |
//! | 26     | encryption information |
//! | 0–64K  | data |
//! | 4      | CRC |
//!
//! The destination short address is the *only* field a switch examines while
//! forwarding. The paper's table shows an 8-byte CRC field; this
//! reproduction carries a 4-byte CRC-32 (the same algorithm the control
//! processor computed in software) — the 4-byte difference is irrelevant to
//! every experiment and is noted in DESIGN.md.

use std::fmt;

use bytes::Bytes;

use crate::crc::crc32;
use crate::shortaddr::ShortAddress;

/// Length of the fixed Autonet header (addresses + type + encryption info).
pub const AUTONET_HEADER_LEN: usize = 32;

/// Length of the trailing CRC.
pub const CRC_LEN: usize = 4;

/// Maximum payload carried by a normal (non-broadcast) Autonet packet.
pub const MAX_PAYLOAD_LEN: usize = 64 * 1024;

/// Length of the encryption-information region of the header.
const ENC_INFO_LEN: usize = 26;

/// The protocol carried by a packet, from the Autonet type field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// An encapsulated Ethernet datagram (type 1 in the paper).
    Data,
    /// A reconfiguration-protocol message (tree positions, acks, topology
    /// reports).
    Reconfig,
    /// A connectivity-monitor probe or reply.
    Probe,
    /// The source-routed debugging/monitoring protocol (§6.7).
    Srp,
    /// Host-to-switch service traffic (short-address requests/replies).
    HostSwitch,
    /// Switch diagnostics.
    Diagnostic,
}

impl PacketType {
    /// Encodes the type as its wire value.
    pub fn as_u16(self) -> u16 {
        match self {
            PacketType::Data => 1,
            PacketType::Reconfig => 2,
            PacketType::Probe => 3,
            PacketType::Srp => 4,
            PacketType::HostSwitch => 5,
            PacketType::Diagnostic => 6,
        }
    }

    /// Decodes a wire value.
    pub fn from_u16(raw: u16) -> Option<Self> {
        Some(match raw {
            1 => PacketType::Data,
            2 => PacketType::Reconfig,
            3 => PacketType::Probe,
            4 => PacketType::Srp,
            5 => PacketType::HostSwitch,
            6 => PacketType::Diagnostic,
            _ => return None,
        })
    }
}

/// A parsed Autonet packet.
#[derive(Clone, PartialEq, Eq)]
pub struct Packet {
    /// Destination short address — the only field switches look at.
    pub dst: ShortAddress,
    /// Source short address, used by receivers to learn addresses.
    pub src: ShortAddress,
    /// Which protocol the payload belongs to.
    pub ptype: PacketType,
    /// The encryption-information header region (zeroed when unused).
    pub enc_info: [u8; ENC_INFO_LEN],
    /// The data field.
    pub payload: Bytes,
}

impl Packet {
    /// Creates a packet with a zeroed encryption region.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_PAYLOAD_LEN`].
    pub fn new(
        dst: ShortAddress,
        src: ShortAddress,
        ptype: PacketType,
        payload: impl Into<Bytes>,
    ) -> Self {
        let payload = payload.into();
        assert!(
            payload.len() <= MAX_PAYLOAD_LEN,
            "payload too large: {}",
            payload.len()
        );
        Packet {
            dst,
            src,
            ptype,
            enc_info: [0; ENC_INFO_LEN],
            payload,
        }
    }

    /// Total length of the packet on the wire, in data bytes.
    pub fn wire_len(&self) -> usize {
        AUTONET_HEADER_LEN + self.payload.len() + CRC_LEN
    }

    /// Serializes the packet, appending the CRC over header and payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.dst.to_bytes());
        out.extend_from_slice(&self.src.to_bytes());
        out.extend_from_slice(&self.ptype.as_u16().to_be_bytes());
        out.extend_from_slice(&self.enc_info);
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Parses and CRC-checks a packet from its wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<Packet, PacketCodecError> {
        if bytes.len() < AUTONET_HEADER_LEN + CRC_LEN {
            return Err(PacketCodecError::Truncated { len: bytes.len() });
        }
        let body_len = bytes.len() - CRC_LEN;
        let expected = crc32(&bytes[..body_len]);
        let stored = u32::from_be_bytes(bytes[body_len..].try_into().expect("CRC_LEN bytes"));
        if expected != stored {
            return Err(PacketCodecError::BadCrc { expected, stored });
        }
        let dst = ShortAddress::from_bytes([bytes[0], bytes[1]]);
        let src = ShortAddress::from_bytes([bytes[2], bytes[3]]);
        let raw_type = u16::from_be_bytes([bytes[4], bytes[5]]);
        let ptype = PacketType::from_u16(raw_type)
            .ok_or(PacketCodecError::UnknownType { raw: raw_type })?;
        let mut enc_info = [0u8; ENC_INFO_LEN];
        enc_info.copy_from_slice(&bytes[6..6 + ENC_INFO_LEN]);
        let payload = Bytes::copy_from_slice(&bytes[AUTONET_HEADER_LEN..body_len]);
        Ok(Packet {
            dst,
            src,
            ptype,
            enc_info,
            payload,
        })
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Packet({:?} {}->{} {}B)",
            self.ptype,
            self.src,
            self.dst,
            self.payload.len()
        )
    }
}

/// Errors produced while decoding a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketCodecError {
    /// Fewer bytes than the minimum packet size.
    Truncated {
        /// How many bytes arrived.
        len: usize,
    },
    /// The CRC did not match the packet contents.
    BadCrc {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC carried in the packet trailer.
        stored: u32,
    },
    /// The Autonet type field held an unknown value.
    UnknownType {
        /// The offending type value.
        raw: u16,
    },
}

impl fmt::Display for PacketCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketCodecError::Truncated { len } => write!(f, "packet truncated at {len} bytes"),
            PacketCodecError::BadCrc { expected, stored } => {
                write!(
                    f,
                    "CRC mismatch: computed {expected:08x}, stored {stored:08x}"
                )
            }
            PacketCodecError::UnknownType { raw } => write!(f, "unknown Autonet type {raw:#06x}"),
        }
    }
}

impl std::error::Error for PacketCodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::new(
            ShortAddress::assigned(3, 2),
            ShortAddress::assigned(7, 1),
            PacketType::Data,
            &b"the payload"[..],
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), p.wire_len());
        let q = Packet::decode(&bytes).expect("decode");
        assert_eq!(p, q);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let p = Packet::new(
            ShortAddress::BROADCAST_HOSTS,
            ShortAddress::assigned(1, 0),
            PacketType::Reconfig,
            Bytes::new(),
        );
        let q = Packet::decode(&p.encode()).expect("decode");
        assert_eq!(p, q);
        assert_eq!(p.wire_len(), AUTONET_HEADER_LEN + CRC_LEN);
    }

    #[test]
    fn corrupted_byte_fails_crc() {
        let mut bytes = sample().encode();
        bytes[10] ^= 0x40;
        assert!(matches!(
            Packet::decode(&bytes),
            Err(PacketCodecError::BadCrc { .. })
        ));
    }

    #[test]
    fn truncated_packet_rejected() {
        let bytes = sample().encode();
        assert!(matches!(
            Packet::decode(&bytes[..AUTONET_HEADER_LEN + CRC_LEN - 1]),
            Err(PacketCodecError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = sample().encode();
        // Overwrite the type field, then fix up the CRC so only the type is
        // invalid.
        bytes[4] = 0xAB;
        bytes[5] = 0xCD;
        let body_len = bytes.len() - CRC_LEN;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(
            Packet::decode(&bytes),
            Err(PacketCodecError::UnknownType { raw: 0xABCD })
        );
    }

    #[test]
    fn enc_info_survives_roundtrip() {
        let mut p = sample();
        p.enc_info = [0x5A; 26];
        let q = Packet::decode(&p.encode()).expect("decode");
        assert_eq!(q.enc_info, [0x5A; 26]);
    }

    #[test]
    fn type_values_roundtrip() {
        for t in [
            PacketType::Data,
            PacketType::Reconfig,
            PacketType::Probe,
            PacketType::Srp,
            PacketType::HostSwitch,
            PacketType::Diagnostic,
        ] {
            assert_eq!(PacketType::from_u16(t.as_u16()), Some(t));
        }
        assert_eq!(PacketType::from_u16(0), None);
        assert_eq!(PacketType::from_u16(999), None);
    }
}

//! Alternate host ports: no single failure disconnects a host (§3.9,
//! §6.8.3). We crash the switch a host is actively using and watch the
//! driver fail over to the alternate port, re-learn its short address,
//! advertise it, and resume traffic.
//!
//! Run with: `cargo run --release --example host_failover`

use autonet::net::{NetEventKind, NetParams, Network};
use autonet::sim::{SimDuration, SimTime};
use autonet::topo::{gen, HostId};

fn main() {
    // A ring of four switches; host 0 is dual-homed to switches 0 and 1.
    let mut topo = gen::ring(4, 23);
    gen::add_dual_homed_hosts(&mut topo, 1, 9);
    let h = HostId(0);
    let spec = topo.host(h).clone();
    println!(
        "host {:?}: primary on {:?} port {}, alternate on {:?} port {}",
        h,
        spec.primary.switch,
        spec.primary.port,
        spec.alternate.unwrap().switch,
        spec.alternate.unwrap().port
    );

    let mut net = Network::new(topo, NetParams::tuned(), 4);
    net.run_until_stable(SimTime::from_secs(30))
        .expect("converges");
    net.run_for(SimDuration::from_secs(3));
    let addr_before = net.host(h).short_address().expect("address learned");
    println!("address before failure: {addr_before}");

    // Background traffic: a peer host pings our host every 100 ms.
    let peer = HostId(2);
    let dst = net.topology().host(h).uid;
    let t0 = net.now();
    for i in 0..200u64 {
        net.schedule_host_send(
            t0 + SimDuration::from_millis(100) * i,
            peer,
            dst,
            256,
            1000 + i,
        );
    }

    // Crash the host's active switch.
    let victim = spec.primary.switch;
    let crash_at = t0 + SimDuration::from_secs(2);
    net.schedule_switch_down(crash_at, victim);
    println!("crashing {victim:?} (the host's active switch) at {crash_at}");

    net.run_for(SimDuration::from_secs(20));

    // Find the failover and the re-learned address in the event log.
    let mut switched_at = None;
    let mut relearned = None;
    for e in net.events() {
        if e.time < crash_at {
            continue;
        }
        match &e.kind {
            NetEventKind::HostPortSwitched(hid, active) if *hid == h => {
                switched_at.get_or_insert((e.time, *active));
            }
            NetEventKind::HostAddressLearned(hid, addr) if *hid == h && switched_at.is_some() => {
                relearned.get_or_insert((e.time, *addr));
            }
            _ => {}
        }
    }
    let (sw_t, active) = switched_at.expect("driver must fail over");
    println!(
        "\nfailover to controller port {active} after {}",
        sw_t.saturating_since(crash_at)
    );
    let (addr_t, addr) = relearned.expect("address re-learned on the alternate switch");
    println!(
        "new address {addr} learned {} after the crash",
        addr_t.saturating_since(crash_at)
    );
    assert_ne!(
        addr, addr_before,
        "the alternate port has a different short address"
    );

    // Traffic delivered after the failover proves end-to-end recovery.
    let delivered_after = net
        .deliveries()
        .iter()
        .filter(|d| d.host == h && d.time > addr_t)
        .count();
    println!("frames delivered to the host after recovery: {delivered_after}");
    assert!(
        delivered_after > 0,
        "traffic must resume on the alternate port"
    );

    let outage_frames = net
        .deliveries()
        .iter()
        .filter(|d| d.host == h && d.time > crash_at && d.time < addr_t)
        .count();
    println!("frames delivered during the outage window: {outage_frames}");
    println!(
        "\ntotal outage (crash -> new address advertised): {}",
        addr_t.saturating_since(crash_at)
    );
}

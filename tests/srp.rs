//! Integration: the source-routed debugging protocol (§6.7) across a real
//! network — including during a reconfiguration, which is the property SRP
//! exists for ("SRP packets continue to work during reconfiguration").

use autonet::autopilot::SrpPayload;
use autonet::net::{NetParams, Network};
use autonet::sim::{SimDuration, SimTime};
use autonet::topo::{gen, LinkId, PortUse, SwitchId};
use autonet::wire::PortIndex;

/// The ports to walk from `from` along a switch path.
fn route_along(net: &Network, path: &[SwitchId]) -> Vec<PortIndex> {
    let topo = net.topology();
    let mut ports = Vec::new();
    for pair in path.windows(2) {
        let view = topo.view_all();
        let port = view
            .neighbors(pair[0])
            .find(|(_, _, far)| far.switch == pair[1])
            .map(|(p, _, _)| p)
            .expect("adjacent switches");
        ports.push(port);
    }
    ports
}

#[test]
fn multi_hop_ping_and_state() {
    let topo = gen::line(4, 0);
    let uid_of = |i: usize| topo.switch(SwitchId(i)).uid;
    let far_uid = uid_of(3);
    let mut net = Network::new(topo, NetParams::tuned(), 3);
    net.run_until_stable(SimTime::from_secs(60))
        .expect("converges");
    // Ping switch 3 from switch 0, three hops down the line.
    let route = route_along(&net, &[SwitchId(0), SwitchId(1), SwitchId(2), SwitchId(3)]);
    assert_eq!(route.len(), 3);
    net.schedule_srp(
        net.now() + SimDuration::from_millis(1),
        SwitchId(0),
        route.clone(),
        SrpPayload::Ping,
    );
    net.schedule_srp(
        net.now() + SimDuration::from_millis(2),
        SwitchId(0),
        route,
        SrpPayload::GetState,
    );
    net.run_for(SimDuration::from_secs(1));
    let replies = net.take_srp_replies(SwitchId(0));
    assert_eq!(replies.len(), 2, "{replies:?}");
    assert!(replies
        .iter()
        .any(|r| matches!(r, SrpPayload::Pong { uid, .. } if *uid == far_uid)));
    assert!(replies
        .iter()
        .any(|r| matches!(r, SrpPayload::State { uid, open: true, .. } if *uid == far_uid)));
}

#[test]
fn srp_works_during_reconfiguration() {
    // Cut a link elsewhere in a ring and immediately ping across a
    // surviving path while the reconfiguration is still in flight.
    let topo = gen::ring(5, 0);
    let mut net = Network::new(topo, NetParams::tuned(), 5);
    net.run_until_stable(SimTime::from_secs(60))
        .expect("converges");
    let far_uid = net.topology().switch(SwitchId(2)).uid;
    let route = route_along(&net, &[SwitchId(0), SwitchId(1), SwitchId(2)]);
    let t = net.now() + SimDuration::from_millis(5);
    // The failed link is 3-4; the 0-1-2 path is unaffected physically.
    net.schedule_link_down(t, LinkId(3));
    // Fire the ping 2 ms after the fault — inside the reconfiguration
    // window for the tuned preset (~25 ms).
    net.schedule_srp(
        t + SimDuration::from_millis(2),
        SwitchId(0),
        route,
        SrpPayload::Ping,
    );
    net.run_for(SimDuration::from_millis(15));
    // The reply must already be back even though the network is (or was
    // just) closed for host traffic.
    let replies = net.take_srp_replies(SwitchId(0));
    assert!(
        replies
            .iter()
            .any(|r| matches!(r, SrpPayload::Pong { uid, .. } if *uid == far_uid)),
        "{replies:?}"
    );
    net.run_until_stable(net.now() + SimDuration::from_secs(30))
        .expect("reconfiguration completes");
}

#[test]
fn srp_reply_reports_good_ports() {
    let topo = gen::torus(3, 3, 0);
    let mut net = Network::new(topo, NetParams::tuned(), 7);
    net.run_until_stable(SimTime::from_secs(60))
        .expect("converges");
    // One-hop state query to a neighbor.
    let (port, _, far) = {
        let topo = net.topology();
        let view = topo.view_all();
        let mut it = view.neighbors(SwitchId(0));
        it.next().expect("has neighbors")
    };
    let far_uid = net.topology().switch(far.switch).uid;
    net.schedule_srp(
        net.now() + SimDuration::from_millis(1),
        SwitchId(0),
        vec![port],
        SrpPayload::GetState,
    );
    net.run_for(SimDuration::from_secs(1));
    let replies = net.take_srp_replies(SwitchId(0));
    let state = replies
        .iter()
        .find_map(|r| match r {
            SrpPayload::State {
                uid,
                good_ports,
                open,
                ..
            } if *uid == far_uid => Some((*good_ports, *open)),
            _ => None,
        })
        .expect("state reply");
    assert_eq!(state, (4, true), "a torus switch has 4 good trunk ports");
    // Sanity: the port we used really is a trunk port.
    assert!(matches!(
        net.topology().port_use(SwitchId(0), port),
        PortUse::Link(_)
    ));
}

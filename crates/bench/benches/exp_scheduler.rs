//! E13 — First-come-first-considered vs first-come-first-served port
//! scheduling (§4.5, §6.4).
//!
//! Paper: the FCFC engine lets younger requests capture ports an older
//! blocked request cannot use (queue jumping), while broadcast requests
//! accumulate reservations so they are never starved. A strict FCFS
//! discipline stalls the whole queue behind one blocked head.

use autonet_bench::print_table;
use autonet_switch::datapath::{DatapathConfig, DatapathSim};
use autonet_switch::{ForwardingEntry, PortSet};
use autonet_wire::ShortAddress;

const SLOT_NS: f64 = 80.0;

struct Outcome {
    delivered: usize,
    makespan_us: f64,
    mean_wait_us: f64,
    max_wait_us: f64,
    short_mean_us: f64,
    short_max_us: f64,
    bcast_done: bool,
}

/// The contention scenario: hosts A and B both stream to the (slow,
/// contended) output X; host C streams to the free output Y; one broadcast
/// from D must capture X and Y simultaneously.
fn run(use_fcfs: bool) -> Outcome {
    let config = DatapathConfig {
        use_fcfs_scheduler: use_fcfs,
        ..DatapathConfig::default()
    };
    let mut sim = DatapathSim::new(config);
    let s = sim.add_switch();
    let a = sim.add_host();
    let b = sim.add_host();
    let c = sim.add_host();
    let d = sim.add_host();
    let x = sim.add_host();
    let y = sim.add_host();
    sim.connect_host(a, s, 1, 7);
    sim.connect_host(b, s, 2, 7);
    sim.connect_host(c, s, 3, 7);
    sim.connect_host(d, s, 4, 7);
    sim.connect_host(x, s, 5, 7);
    sim.connect_host(y, s, 6, 7);
    let to_x = ShortAddress::from_raw(0x0105);
    let to_y = ShortAddress::from_raw(0x0106);
    for in_port in [1u8, 2, 3, 4] {
        sim.table_mut(s).set(
            in_port,
            to_x,
            ForwardingEntry::alternatives(PortSet::single(5)),
        );
        sim.table_mut(s).set(
            in_port,
            to_y,
            ForwardingEntry::alternatives(PortSet::single(6)),
        );
        sim.table_mut(s).set(
            in_port,
            ShortAddress::BROADCAST_HOSTS,
            ForwardingEntry::simultaneous(PortSet::from_ports([5, 6])),
        );
    }
    // Offered load: A and B send long packets to X (the contended output);
    // C sends many short packets to Y (should not wait behind them under
    // FCFC); D sends one broadcast mid-stream.
    for _ in 0..4 {
        sim.send(a, to_x, 3000, false);
        sim.send(b, to_x, 3000, false);
    }
    for _ in 0..40 {
        sim.send(c, to_y, 100, false);
    }
    sim.send(d, ShortAddress::BROADCAST_HOSTS, 500, true);
    let _ = sim.run_until_drained(20_000_000, 100_000);
    let records = sim.scheduling_records();
    let waits: Vec<f64> = records
        .iter()
        .map(|r| (r.grant_tick - r.submit_tick) as f64 * SLOT_NS / 1000.0)
        .collect();
    // Port 3 carries the short packets to the uncontended output — the
    // class queue jumping is supposed to help.
    let short_waits: Vec<f64> = records
        .iter()
        .filter(|r| r.in_port == 3)
        .map(|r| (r.grant_tick - r.submit_tick) as f64 * SLOT_NS / 1000.0)
        .collect();
    let bcast_done = records.iter().any(|r| r.broadcast);
    let last_delivery = sim.deliveries().iter().map(|d| d.tick).max().unwrap_or(0);
    Outcome {
        delivered: sim.deliveries().len(),
        makespan_us: last_delivery as f64 * SLOT_NS / 1000.0,
        mean_wait_us: waits.iter().sum::<f64>() / waits.len().max(1) as f64,
        max_wait_us: waits.iter().cloned().fold(0.0, f64::max),
        short_mean_us: short_waits.iter().sum::<f64>() / short_waits.len().max(1) as f64,
        short_max_us: short_waits.iter().cloned().fold(0.0, f64::max),
        bcast_done,
    }
}

fn main() {
    println!("E13: FCFC vs FCFS output-port scheduling under contention");
    let mut rows = Vec::new();
    for (name, fcfs) in [("FCFC (Autonet)", false), ("FCFS (baseline)", true)] {
        let o = run(fcfs);
        rows.push(vec![
            name.to_string(),
            o.delivered.to_string(),
            format!("{:.0} us", o.makespan_us),
            format!("{:.1} us", o.mean_wait_us),
            format!("{:.1} us", o.max_wait_us),
            format!("{:.1} us", o.short_mean_us),
            format!("{:.1} us", o.short_max_us),
            if o.bcast_done { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        "E13: scheduling discipline comparison",
        &[
            "scheduler",
            "delivered",
            "makespan",
            "mean wait",
            "max wait",
            "short-pkt mean",
            "short-pkt max",
            "broadcast served",
        ],
        &rows,
    );
    println!(
        "\nShape check: FCFC finishes the whole offered load sooner because\n\
         the short packets to the free output jump the blocked head-of-queue\n\
         requests; both serve the broadcast (reservation accumulation), but\n\
         FCFS pays for it with head-of-line blocking on everything else."
    );
}

//! Scale smoke tests: the paper sizes an Autonet at up to ~1000
//! dual-connected hosts (§2); the reconfiguration protocol must keep
//! working well beyond the 30-switch service network.

use autonet::net::{NetParams, Network};
use autonet::sim::{SimDuration, SimTime};
use autonet::topo::{gen, LinkId, SwitchId};

#[test]
fn five_by_five_torus_with_hosts() {
    let mut topo = gen::torus(5, 5, 55);
    gen::add_dual_homed_hosts(&mut topo, 2, 57);
    let mut net = Network::new(topo, NetParams::tuned(), 1);
    net.run_until_stable(SimTime::from_secs(60))
        .expect("converges");
    net.check_against_reference().expect("consistent");
    // Survive a fault and a repair.
    let t = net.now() + SimDuration::from_millis(10);
    net.schedule_link_down(t, LinkId(11));
    net.run_for(SimDuration::from_millis(50));
    net.run_until_stable(net.now() + SimDuration::from_secs(60))
        .expect("reconverges");
    net.check_against_reference()
        .expect("consistent after fault");
    let g = net.autopilot(SwitchId(0)).global().unwrap();
    assert_eq!(g.switches.len(), 25);
}

/// The big one: a 100-switch torus (400 trunk links). Run explicitly with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "heavy: run with --release -- --ignored"]
fn hundred_switch_torus() {
    let topo = gen::torus(10, 10, 99);
    let mut net = Network::new(topo, NetParams::tuned(), 2);
    let t = net
        .run_until_stable(SimTime::from_secs(120))
        .expect("100-switch bring-up converges");
    net.check_against_reference().expect("consistent");
    println!("100-switch bring-up converged at {t}");
    // One fault, timed.
    let fault = net.now() + SimDuration::from_millis(10);
    net.schedule_link_down(fault, LinkId(0));
    net.run_for(SimDuration::from_millis(50));
    let done = net
        .run_until_stable(net.now() + SimDuration::from_secs(120))
        .expect("reconverges");
    println!(
        "100-switch reconfiguration: {}",
        done.saturating_since(fault)
    );
    assert!(
        done.saturating_since(fault) < SimDuration::from_secs(2),
        "even at 100 switches reconfiguration stays subsecond-ish"
    );
}

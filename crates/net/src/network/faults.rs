//! Fault injection: link and switch failures/repairs, host power events,
//! flapping cables.

use autonet_host::HostController;
use autonet_sim::{Scheduler, SimDuration, SimTime};
use autonet_topo::{HostId, LinkId, SwitchId};

use super::events::{Event, NetEventKind};
use super::{NetWorld, Network};

impl NetWorld {
    pub(super) fn on_link_down(&mut self, now: SimTime, l: usize) {
        self.link_up[l] = false;
        self.log_event(now, NetEventKind::Fault(format!("link {l} down")));
    }

    pub(super) fn on_link_up(&mut self, now: SimTime, l: usize) {
        self.link_up[l] = true;
        self.log_event(now, NetEventKind::Fault(format!("link {l} up")));
    }

    pub(super) fn on_switch_down(&mut self, now: SimTime, s: usize) {
        self.switches.up[s] = false;
        self.log_event(now, NetEventKind::Fault(format!("switch {s} down")));
    }

    /// Reboots the switch with a fresh Autopilot (and a fresh dead-port
    /// mirror: everything starts condemned again).
    pub(super) fn on_switch_up(
        &mut self,
        now: SimTime,
        s: usize,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let uid = self.topo.switch(SwitchId(s)).uid;
        self.switches
            .reset_slot(s, uid, self.params.autopilot, now, self.params.tracing);
        self.log_event(now, NetEventKind::Fault(format!("switch {s} up")));
        sched.after(SimDuration::ZERO, Event::SwitchBoot { s });
    }

    pub(super) fn on_host_power_off(&mut self, now: SimTime, h: usize) {
        self.hosts.up[h] = false;
        self.host_powered_off_at[h] = Some(now);
        self.log_event(now, NetEventKind::Fault(format!("host {h} powered off")));
    }

    pub(super) fn on_host_power_on(
        &mut self,
        now: SimTime,
        h: usize,
        sched: &mut Scheduler<'_, Event>,
    ) {
        self.hosts.up[h] = true;
        self.host_powered_off_at[h] = None;
        let uid = self.topo.host(HostId(h)).uid;
        let dual = self.topo.host(HostId(h)).alternate.is_some();
        self.hosts.ctl[h] = HostController::new(uid, self.params.host, dual);
        self.log_event(now, NetEventKind::Fault(format!("host {h} powered on")));
        sched.after(SimDuration::ZERO, Event::HostBoot { h });
    }

    pub(super) fn on_host_link_down(&mut self, now: SimTime, h: usize, which: usize) {
        self.host_link_up[h][which] = false;
        self.log_event(
            now,
            NetEventKind::Fault(format!("host {h} link {which} down")),
        );
    }

    pub(super) fn on_host_link_up(&mut self, now: SimTime, h: usize, which: usize) {
        self.host_link_up[h][which] = true;
        self.log_event(
            now,
            NetEventKind::Fault(format!("host {h} link {which} up")),
        );
    }
}

impl Network {
    /// Schedules a link failure.
    pub fn schedule_link_down(&mut self, at: SimTime, l: LinkId) {
        self.sim.schedule_at(at, Event::LinkDown { l: l.0 });
    }

    /// Schedules a link repair.
    pub fn schedule_link_up(&mut self, at: SimTime, l: LinkId) {
        self.sim.schedule_at(at, Event::LinkUp { l: l.0 });
    }

    /// Schedules a switch crash.
    pub fn schedule_switch_down(&mut self, at: SimTime, s: SwitchId) {
        self.sim.schedule_at(at, Event::SwitchDown { s: s.0 });
    }

    /// Schedules a switch power-on (reboots a fresh Autopilot).
    pub fn schedule_switch_up(&mut self, at: SimTime, s: SwitchId) {
        self.sim.schedule_at(at, Event::SwitchUp { s: s.0 });
    }

    /// Schedules a host power-off with cables left attached: the
    /// unterminated links *reflect* (§5.3), which is what made the §7
    /// broadcast storm possible, until the switch's status sampler counts
    /// enough code violations to kill the ports.
    pub fn schedule_host_power_off(&mut self, at: SimTime, h: HostId) {
        self.sim.schedule_at(at, Event::HostPowerOff { h: h.0 });
    }

    /// Schedules the host powering back on.
    pub fn schedule_host_power_on(&mut self, at: SimTime, h: HostId) {
        self.sim.schedule_at(at, Event::HostPowerOn { h: h.0 });
    }

    /// Schedules a host-link failure (`which`: 0 primary, 1 alternate).
    pub fn schedule_host_link_down(&mut self, at: SimTime, h: HostId, which: usize) {
        self.sim
            .schedule_at(at, Event::HostLinkDown { h: h.0, which });
    }

    /// Schedules a host-link repair.
    pub fn schedule_host_link_up(&mut self, at: SimTime, h: HostId, which: usize) {
        self.sim
            .schedule_at(at, Event::HostLinkUp { h: h.0, which });
    }

    /// Schedules `2 * cycles` alternating down/up events on a link: a
    /// flapping (intermittent) cable.
    pub fn schedule_link_flaps(
        &mut self,
        from: SimTime,
        l: LinkId,
        half_period: SimDuration,
        cycles: usize,
    ) {
        let mut t = from;
        for _ in 0..cycles {
            self.schedule_link_down(t, l);
            t += half_period;
            self.schedule_link_up(t, l);
            t += half_period;
        }
    }
}

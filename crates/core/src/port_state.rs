//! The six port states of the monitoring tower.

use std::fmt;

/// Dynamic classification of a switch port (companion paper §6.5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortState {
    /// The port does not work well enough to use.
    Dead,
    /// Being monitored to determine whether a host or switch is attached.
    Checking,
    /// Attached to a host.
    Host,
    /// Attached to a switch of unknown identity.
    SwitchWho,
    /// Attached to another port on the same switch (or reflecting).
    SwitchLoop,
    /// Attached to a responsive neighbor switch — usable for routing.
    SwitchGood,
}

impl PortState {
    /// Returns `true` for the three `s.switch.*` states, which the
    /// connectivity monitor continuously probes.
    pub fn is_switch(self) -> bool {
        matches!(
            self,
            PortState::SwitchWho | PortState::SwitchLoop | PortState::SwitchGood
        )
    }

    /// Returns `true` if packets may be forwarded through the port.
    pub fn carries_traffic(self) -> bool {
        matches!(self, PortState::Host | PortState::SwitchGood)
    }
}

impl fmt::Display for PortState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PortState::Dead => "s.dead",
            PortState::Checking => "s.checking",
            PortState::Host => "s.host",
            PortState::SwitchWho => "s.switch.who",
            PortState::SwitchLoop => "s.switch.loop",
            PortState::SwitchGood => "s.switch.good",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        assert!(PortState::SwitchWho.is_switch());
        assert!(PortState::SwitchLoop.is_switch());
        assert!(PortState::SwitchGood.is_switch());
        assert!(!PortState::Host.is_switch());
        assert!(!PortState::Dead.is_switch());
        assert!(PortState::Host.carries_traffic());
        assert!(PortState::SwitchGood.carries_traffic());
        assert!(!PortState::SwitchWho.carries_traffic());
        assert!(!PortState::Checking.carries_traffic());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(PortState::Dead.to_string(), "s.dead");
        assert_eq!(PortState::SwitchGood.to_string(), "s.switch.good");
    }
}

//! Worst-case schedule search: counter-example-guided adversarial fault
//! campaigns.
//!
//! Random campaigns (`random_scenario`) ask "does a random storm break
//! it?". This module asks the adversary's question: *what is the worst
//! storm we can construct?* — the schedule a Saia/Trehan-style attacker
//! who times faults to land mid-reconvergence would pick. The search is
//! an optimizer over the existing [`Scenario`]/[`FaultOp`] DSL that
//! maximizes the soft damage objectives of [`DamageVector`] instead of
//! hunting hard oracle violations:
//!
//! 1. **seed corpus** — a handful of random k-event schedules on the
//!    target topology establishes both the Pareto archive and the
//!    random baseline (its median blackout is what E24 compares
//!    against);
//! 2. **guided mutation** — each round breeds children from random
//!    archive entries by retiming, same-slot merging (simultaneous
//!    faults), retargeting, op-swapping, adding or dropping events.
//!    Retargeting is *biased toward the nodes named in the incumbent
//!    champion's critical path* ([`Timeline::last_fault_critical_path`]
//!    via [`CheckOutcome::critical`]): the switches the last
//!    reconfiguration waited on are where a second fault hurts most —
//!    the counter-example-guided step;
//! 3. **Pareto archive** — children that survive the hard oracles are
//!    offered to a [`ParetoFront`]; violating runs are counted but not
//!    archived (a violation is a *bug* for the shrink-and-reproduce
//!    workflow, not damage — unless nothing legal exists at all);
//! 4. **shrink** — the champion is minimized with [`shrink_schedule`]
//!    under an objective-preserving predicate (still legal, blackout no
//!    lower than found), then rendered with `to_code` as a
//!    self-contained reproducer, ready to pin as a golden.
//!
//! [`Timeline::last_fault_critical_path`]: autonet_trace::Timeline::last_fault_critical_path

use autonet_net::NetParams;
use autonet_sim::{SimDuration, SimRng};
use autonet_topo::Topology;

use crate::engine::{run_packet, CheckOutcome};
use crate::objective::{DamageVector, ParetoFront};
use crate::oracle::OracleConfig;
use crate::scenario::{FaultEvent, FaultOp, Scenario, TopoSpec};
use crate::shrink::shrink_schedule;

/// Budget and shape knobs of one search. Everything is deterministic in
/// `seed`.
#[derive(Clone, Debug)]
pub struct WorstCaseConfig {
    /// Master seed: drives schedule generation, mutation choices, and
    /// the simulation seed of every candidate.
    pub seed: u64,
    /// Seed-corpus size (also the random-baseline sample).
    pub corpus: usize,
    /// Guided-mutation rounds.
    pub rounds: usize,
    /// Children bred per round.
    pub children: usize,
    /// Schedule length cap (the "k" of k-event schedules; goldens pin
    /// k ≤ 3).
    pub max_events: usize,
    /// Percent chance a generated event lands in its predecessor's slot.
    pub same_slot_pct: u64,
    /// Latest event offset from first quiescence, in milliseconds.
    pub horizon_ms: u64,
    /// Final settle budget of every candidate scenario.
    pub settle_ms: u64,
}

impl WorstCaseConfig {
    /// The default search budget: 5 + 3×4 = 17 evaluations plus the
    /// shrink re-runs. Every evaluation is a full packet simulation
    /// (bring-up, faults, reconvergence), so the budget is sized for the
    /// bench topologies, not for exhaustiveness; the 30 s settle window
    /// is an order of magnitude above any legal heal (E21 heals in tens
    /// of milliseconds; escalated skeptic quarantines run a few seconds)
    /// while keeping candidates that never settle from dominating the
    /// wall clock.
    pub fn new(seed: u64) -> WorstCaseConfig {
        WorstCaseConfig {
            seed,
            corpus: 5,
            rounds: 3,
            children: 4,
            max_events: 3,
            same_slot_pct: 35,
            horizon_ms: 1_500,
            settle_ms: 30_000,
        }
    }

    /// A CI-smoke budget: 3 + 2×3 = 9 evaluations.
    /// Also the budget of the fat_tree-256 golden/bench rows, where a
    /// single evaluation simulates a 256-switch hosted fabric.
    pub fn smoke(seed: u64) -> WorstCaseConfig {
        WorstCaseConfig {
            corpus: 3,
            rounds: 2,
            children: 3,
            ..WorstCaseConfig::new(seed)
        }
    }
}

/// What a search found.
#[derive(Clone, Debug)]
pub struct WorstCaseResult {
    /// The shrunk champion schedule.
    pub champion: Scenario,
    /// The champion's damage, re-measured after shrinking.
    pub damage: DamageVector,
    /// The champion's damage before shrinking (shrinking must not lower
    /// the blackout axis; the others may move).
    pub pre_shrink: DamageVector,
    /// The final Pareto front (objective point and schedule).
    pub front: Vec<(DamageVector, Scenario)>,
    /// Median blackout across the seed corpus: the random baseline the
    /// champion is compared against in E24.
    pub random_median_blackout: SimDuration,
    /// Total engine runs spent (corpus + children + shrink re-runs).
    pub evaluations: usize,
    /// Candidates discarded because a hard oracle fired.
    pub violations: usize,
    /// The champion as a self-contained, copy-pasteable Rust test.
    pub reproducer: String,
}

/// Per-topology target inventory, plus the critical-path bias set.
struct Targets {
    n_links: usize,
    n_switches: usize,
    /// Links incident to a bias node, recomputed when the champion
    /// changes.
    hot_links: Vec<usize>,
    /// The bias nodes themselves (switch indices from critical-path
    /// segments).
    hot_switches: Vec<usize>,
}

impl Targets {
    fn new(topo: &Topology) -> Targets {
        Targets {
            n_links: topo.num_links(),
            n_switches: topo.num_switches(),
            hot_links: Vec::new(),
            hot_switches: Vec::new(),
        }
    }

    /// Points the bias at the nodes the champion's reconfiguration
    /// latency was attributed to.
    fn rebias(&mut self, topo: &Topology, outcome: &CheckOutcome) {
        let Some(critical) = &outcome.critical else {
            return;
        };
        let mut nodes: Vec<usize> = critical.segments.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        self.hot_links = topo
            .link_ids()
            .filter(|&l| {
                let spec = topo.link(l);
                !spec.is_loopback()
                    && (nodes.contains(&spec.a.switch.0) || nodes.contains(&spec.b.switch.0))
            })
            .map(|l| l.0)
            .collect();
        self.hot_switches = nodes;
    }

    /// A link target, biased toward the critical path half the time.
    fn link(&self, rng: &mut SimRng) -> usize {
        if !self.hot_links.is_empty() && rng.below(2) == 0 {
            *rng.choose(&self.hot_links)
        } else {
            rng.index(self.n_links)
        }
    }

    /// A switch target, biased toward the critical path half the time.
    fn switch(&self, rng: &mut SimRng) -> usize {
        if !self.hot_switches.is_empty() && rng.below(2) == 0 {
            *rng.choose(&self.hot_switches)
        } else {
            rng.index(self.n_switches)
        }
    }

    /// A fresh fault op, weighted toward the damaging kinds.
    fn op(&self, rng: &mut SimRng) -> FaultOp {
        match rng.below(10) {
            0..=4 => FaultOp::LinkDown(self.link(rng)),
            5 | 6 => FaultOp::SwitchDown(self.switch(rng)),
            7 => FaultOp::LinkFlaps {
                link: self.link(rng),
                half_period_ms: 20 + rng.below(60),
                cycles: 1 + rng.index(2),
            },
            8 => FaultOp::LinkUp(self.link(rng)),
            _ => FaultOp::SwitchUp(self.switch(rng)),
        }
    }
}

/// A random k-event schedule on the target topology (the corpus
/// generator; unlike [`crate::scenario::random_scenario`] the topology
/// is the caller's, not drawn from the seed).
fn random_schedule(targets: &Targets, rng: &mut SimRng, cfg: &WorstCaseConfig) -> Vec<FaultEvent> {
    let k = 1 + rng.index(cfg.max_events);
    let mut t_ms = 0u64;
    let mut events = Vec::with_capacity(k);
    for _ in 0..k {
        let same_slot = !events.is_empty() && rng.below(100) < cfg.same_slot_pct;
        if !same_slot {
            t_ms += 30 + rng.below(cfg.horizon_ms.max(60) / 3);
        }
        events.push(FaultEvent {
            at_ms: t_ms,
            op: targets.op(rng),
        });
    }
    events
}

/// One mutation step: timing, ordering, or target of the schedule.
fn mutate(
    events: &mut Vec<FaultEvent>,
    targets: &Targets,
    rng: &mut SimRng,
    cfg: &WorstCaseConfig,
) {
    if events.is_empty() {
        events.push(FaultEvent {
            at_ms: rng.below(cfg.horizon_ms),
            op: targets.op(rng),
        });
        return;
    }
    match rng.below(6) {
        // Retime: move one event anywhere in the horizon.
        0 => {
            let i = rng.index(events.len());
            events[i].at_ms = rng.below(cfg.horizon_ms);
        }
        // Same-slot merge: land one event exactly on another's slot — a
        // simultaneous fault.
        1 => {
            let i = rng.index(events.len());
            let j = rng.index(events.len());
            events[i].at_ms = events[j].at_ms;
        }
        // Retarget: keep the op kind, move it to a (biased) new target.
        2 => {
            let i = rng.index(events.len());
            events[i].op = match &events[i].op {
                FaultOp::LinkDown(_) => FaultOp::LinkDown(targets.link(rng)),
                FaultOp::LinkUp(_) => FaultOp::LinkUp(targets.link(rng)),
                FaultOp::SwitchDown(_) => FaultOp::SwitchDown(targets.switch(rng)),
                FaultOp::SwitchUp(_) => FaultOp::SwitchUp(targets.switch(rng)),
                FaultOp::LinkFlaps {
                    half_period_ms,
                    cycles,
                    ..
                } => FaultOp::LinkFlaps {
                    link: targets.link(rng),
                    half_period_ms: *half_period_ms,
                    cycles: *cycles,
                },
                other => other.clone(),
            };
        }
        // Op swap: a fresh op in the same slot.
        3 => {
            let i = rng.index(events.len());
            events[i].op = targets.op(rng);
        }
        // Add an event (capped at k).
        4 if events.len() < cfg.max_events => {
            events.push(FaultEvent {
                at_ms: rng.below(cfg.horizon_ms),
                op: targets.op(rng),
            });
        }
        // Drop an event (never below one).
        _ if events.len() > 1 => {
            let i = rng.index(events.len());
            events.remove(i);
        }
        _ => {
            let i = rng.index(events.len());
            events[i].at_ms = rng.below(cfg.horizon_ms);
        }
    }
}

/// Runs the counter-example-guided worst-case search on `topo` (which
/// must carry hosts for the blackout objectives to be non-trivial) and
/// returns the shrunk champion with its Pareto front.
pub fn worst_case_search(
    topo: &TopoSpec,
    params: &NetParams,
    oracle: &OracleConfig,
    cfg: &WorstCaseConfig,
) -> WorstCaseResult {
    let built = topo.build();
    let mut targets = Targets::new(&built);
    let mut rng = SimRng::new(cfg.seed ^ 0x40CA5E);
    let mut evaluations = 0usize;
    let mut violations = 0usize;

    let mk = |events: Vec<FaultEvent>| Scenario {
        name: format!("worst-{}", cfg.seed),
        topo: topo.clone(),
        seed: cfg.seed,
        events,
        settle_ms: cfg.settle_ms,
    };
    let eval = |s: &Scenario, evaluations: &mut usize| {
        *evaluations += 1;
        run_packet(s, params, oracle)
    };

    // Phase 1: seed corpus — Pareto seeds plus the random baseline.
    let mut front: ParetoFront<Scenario> = ParetoFront::new();
    let mut corpus_runs: Vec<(DamageVector, Scenario, bool)> = Vec::new();
    let mut best_rank = DamageVector::default().rank();
    for _ in 0..cfg.corpus.max(1) {
        let s = mk(random_schedule(&targets, &mut rng, cfg));
        let outcome = eval(&s, &mut evaluations);
        let v = DamageVector::of(&outcome);
        let legal = outcome.passed();
        if !legal {
            violations += 1;
        }
        if legal && v.rank() >= best_rank {
            best_rank = v.rank();
            targets.rebias(&built, &outcome);
        }
        corpus_runs.push((v, s, legal));
    }
    let mut blackouts: Vec<SimDuration> = corpus_runs.iter().map(|(v, _, _)| v.blackout).collect();
    blackouts.sort_unstable();
    let random_median_blackout = blackouts[blackouts.len() / 2];
    // Archive legal runs; if the topology admits no legal schedule at
    // all (every corpus run trips an oracle) fall back to archiving
    // everything — the search then degenerates into "worst bug", which
    // the caller sees via `violations`.
    let legal_only = corpus_runs.iter().any(|(_, _, legal)| *legal);
    for (v, s, legal) in corpus_runs {
        if legal || !legal_only {
            front.offer(v, s);
        }
    }

    // Phase 2: guided mutation rounds.
    for _ in 0..cfg.rounds {
        for _ in 0..cfg.children {
            let parent = {
                let entries = front.entries();
                let (_, p) = &entries[rng.index(entries.len())];
                p.clone()
            };
            let mut events = parent.events;
            mutate(&mut events, &targets, &mut rng, cfg);
            let child = mk(events);
            let outcome = eval(&child, &mut evaluations);
            let v = DamageVector::of(&outcome);
            let legal = outcome.passed();
            if !legal {
                violations += 1;
            }
            if legal && v.rank() >= best_rank {
                best_rank = v.rank();
                targets.rebias(&built, &outcome);
            }
            if legal || !legal_only {
                front.offer(v, child);
            }
        }
    }

    // Phase 3: shrink the champion, preserving legality and the blackout
    // objective; the other axes may move (dropping a decoy flap can
    // shed skeptic-hold time without touching the blackout).
    let (pre_shrink, champion_raw) = front
        .champion()
        .map(|(v, s)| (*v, s.clone()))
        .expect("corpus is non-empty, so the front is too");
    let floor = pre_shrink.blackout;
    // A zero floor would let the shrinker discard every event (the empty
    // schedule is legal and trivially reaches blackout >= 0), so the
    // predicate also insists on a non-empty schedule.
    let champion = shrink_schedule(&champion_raw, |s| {
        if s.events.is_empty() {
            return false;
        }
        let outcome = eval(s, &mut evaluations);
        (outcome.passed() || !legal_only) && outcome.damage.blackout_total >= floor
    });
    let final_outcome = eval(&champion, &mut evaluations);
    let damage = DamageVector::of(&final_outcome);
    let reproducer = render_reproducer(&champion, &damage);

    WorstCaseResult {
        champion,
        damage,
        pre_shrink,
        front: front
            .entries()
            .iter()
            .map(|(v, s)| (*v, s.clone()))
            .collect(),
        random_median_blackout,
        evaluations,
        violations,
        reproducer,
    }
}

/// Renders a champion as a self-contained `#[test]` asserting its
/// blackout floor (the shape the golden pins use).
fn render_reproducer(scenario: &Scenario, damage: &DamageVector) -> String {
    format!(
        "// Worst-case champion: {damage}\n\
         #[test]\n\
         fn worst_case_reproducer() {{\n    \
             use autonet_check::*;\n    \
             let params = autonet_net::NetParams::tuned();\n    \
             let cfg = OracleConfig::from_params(&params.autopilot);\n    \
             let scenario = {code};\n    \
             let outcome = run_packet(&scenario, &params, &cfg);\n    \
             assert!(\n        \
                 outcome.damage.blackout_total\n            \
                     >= autonet_sim::SimDuration::from_nanos({floor}),\n        \
                 \"blackout objective regressed: {{}}\",\n        \
                 outcome.damage,\n    \
             );\n\
         }}\n",
        code = scenario.to_code(),
        floor = damage.blackout.as_nanos(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use autonet_core::AutopilotParams;

    fn hosted_ring(n: usize) -> TopoSpec {
        TopoSpec::Hosted {
            base: Box::new(TopoSpec::Ring { n, seed: 5 }),
            per_switch: 1,
            seed: 5,
        }
    }

    /// A tiny search on a hosted ring finds *some* damaging schedule,
    /// stays within the event cap, and renders a reproducer — and is
    /// deterministic in the seed.
    #[test]
    fn tiny_search_finds_damage_and_is_deterministic() {
        let params = NetParams::tuned();
        let oracle = OracleConfig::from_params(&AutopilotParams::tuned());
        let cfg = WorstCaseConfig {
            corpus: 2,
            rounds: 1,
            children: 2,
            max_events: 2,
            horizon_ms: 400,
            settle_ms: 60_000,
            ..WorstCaseConfig::smoke(9)
        };
        let a = worst_case_search(&hosted_ring(4), &params, &oracle, &cfg);
        assert!(a.champion.events.len() <= 2);
        assert!(!a.front.is_empty());
        assert!(a.evaluations >= 5);
        assert!(a.reproducer.contains("Scenario {"));
        assert!(a.reproducer.contains("blackout_total"));
        // Shrinking never lowers the blackout axis.
        assert!(a.damage.blackout >= a.pre_shrink.blackout);
        let b = worst_case_search(&hosted_ring(4), &params, &oracle, &cfg);
        assert_eq!(a.champion, b.champion);
        assert_eq!(a.damage, b.damage);
    }
}
